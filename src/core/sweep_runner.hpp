#pragma once
// Concurrent hyperparameter-sweep farm (DESIGN.md §14).
//
// The paper's Fig. 9/10/11 experiments train one independent agent per grid
// point (learning rate, greedy rate ε, network width) — an embarrassingly
// parallel workload the figure benches used to run one point at a time.
// SweepRunner farms the grid across the help-while-waiting ThreadPool with
// the guarantees the DESIGN.md §7 determinism contract demands:
//
//   * Per-point results are a pure function of the point index: each job
//     receives a SweepPointContext carrying the index and a seed derived
//     only from (base seed, index) — never from scheduling — and builds its
//     own agent/eval state from them. Nothing is shared between points.
//   * Results land in a pre-sized vector by point index and per-point log
//     output is buffered and flushed in index order after the whole sweep,
//     so stdout and every downstream table are byte-identical for any pool
//     size (including the serial pool() == nullptr path).
//   * Points shard across the pool via parallel_for, so a sweep may run
//     inside another pool task (the pool helps while waiting; PR 2).
//
// Training inside a point spawns its own worker threads (A3CConfig::workers)
// independent of the pool; keep workers×pool-size near the hardware thread
// count to avoid oversubscription.

#include <cstdint>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/thread_pool.hpp"

namespace minicost::core {

/// Handed to each sweep job; everything a point may randomize must derive
/// from `seed` (or from the job's own captured per-point config).
struct SweepPointContext {
  std::size_t index = 0;  ///< grid-point ordinal in [0, count)
  std::uint64_t seed = 0;  ///< point_seed(base_seed, index)
  /// Per-point progress lines; flushed to the sweep's log stream in index
  /// order after every point finished (never interleaved mid-sweep).
  std::ostringstream log;
};

class SweepRunner {
 public:
  /// `pool == nullptr` runs every point serially on the calling thread —
  /// the determinism reference the CI sweep smoke compares against.
  explicit SweepRunner(std::uint64_t base_seed,
                       util::ThreadPool* pool = nullptr) noexcept
      : base_seed_(base_seed), pool_(pool) {}

  /// Stable per-point seed: SplitMix64-mixed so neighbouring points get
  /// unrelated streams, tagged so point 0 never collides with the base seed
  /// itself (jobs often also train a shared-seed agent for comparability).
  static std::uint64_t point_seed(std::uint64_t base_seed, std::size_t point);

  util::ThreadPool* pool() const noexcept { return pool_; }

  /// Runs `job` once per grid point (any order, possibly concurrent),
  /// returns results indexed by point, and flushes the per-point logs to
  /// `log_to` (nullptr discards them) in index order. R must be
  /// default-constructible and movable.
  template <typename R>
  std::vector<R> run(std::size_t count,
                     const std::function<R(SweepPointContext&)>& job,
                     std::ostream* log_to = &std::cout) {
    std::vector<R> results(count);
    std::vector<std::string> logs(count);
    const auto run_point = [&](std::size_t index) {
      SweepPointContext ctx;
      ctx.index = index;
      ctx.seed = point_seed(base_seed_, index);
      results[index] = job(ctx);
      logs[index] = ctx.log.str();
    };
    if (pool_ != nullptr && pool_->size() > 1 && count > 1) {
      pool_->parallel_for(0, count, run_point);
    } else {
      for (std::size_t index = 0; index < count; ++index) run_point(index);
    }
    if (log_to != nullptr) {
      for (const std::string& text : logs) *log_to << text;
      log_to->flush();
    }
    return results;
  }

 private:
  std::uint64_t base_seed_;
  util::ThreadPool* pool_;
};

}  // namespace minicost::core
