#pragma once
// SLO-constrained tiering: wraps any TieringPolicy and overrides decisions
// that would violate a file's access-latency SLO. The canonical use is
// keeping interactive assets out of archive (whose rehydration takes hours)
// while letting the inner optimizer do whatever it wants with batch data.

#include <vector>

#include "core/policy.hpp"
#include "sim/latency.hpp"

namespace minicost::core {

class SloConstrainedPolicy final : public TieringPolicy {
 public:
  /// `max_p99_ms` is the per-file latency ceiling (index = FileId); an
  /// empty vector applies `default_max_p99_ms` to every file. The inner
  /// policy is borrowed and must outlive this wrapper.
  SloConstrainedPolicy(TieringPolicy& inner, sim::LatencyModel latency,
                       std::vector<double> max_p99_ms = {},
                       double default_max_p99_ms = 1e12);

  std::string name() const override { return inner_.name() + "+SLO"; }
  Knowledge knowledge() const noexcept override { return inner_.knowledge(); }

  void prepare(const PlanContext& context) override;
  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  /// Batches through the inner policy (which may fan out on the pool), then
  /// applies the SLO clamp file by file on the caller's thread so the
  /// overrides() counter needs no synchronization.
  void decide_day(const PlanContext& context, std::size_t day,
                  std::span<const pricing::StorageTier> current,
                  std::span<pricing::StorageTier> out_plan) override;

  /// How many decisions the constraint has overridden so far.
  std::uint64_t overrides() const noexcept { return overrides_; }

 private:
  double ceiling_for(trace::FileId file) const;
  /// SLO clamp for one decided tier; counts an override when it bites.
  pricing::StorageTier constrain(trace::FileId file, pricing::StorageTier wanted);

  TieringPolicy& inner_;
  sim::LatencyModel latency_;
  std::vector<double> max_p99_ms_;
  double default_max_p99_ms_;
  std::uint64_t overrides_ = 0;
};

}  // namespace minicost::core
