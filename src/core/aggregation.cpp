#include "core/aggregation.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace minicost::core {
namespace {

/// Storage price of one GB in `tier` over a period of `days`.
double storage_price_per_period(const pricing::PricingPolicy& pricing,
                                pricing::StorageTier tier, std::size_t days) {
  return pricing.storage_cost_per_day(tier, 1.0) * static_cast<double>(days);
}

double mean_concurrent_rate(const trace::CoRequestGroup& group,
                            std::size_t period_start, std::size_t period_days,
                            std::size_t trace_days) {
  const std::size_t end = std::min(trace_days, period_start + period_days);
  if (period_start >= end) return 0.0;
  const std::span<const double> window(
      group.concurrent_reads.data() + period_start, end - period_start);
  return stats::mean(window);
}

}  // namespace

double aggregation_coefficient(const pricing::PricingPolicy& pricing,
                               pricing::StorageTier tier, std::size_t n,
                               double sum_size_gb, double rdc_per_day,
                               std::size_t period_days,
                               double writes_per_day) {
  if (n < 2)
    throw std::invalid_argument("aggregation_coefficient: need n >= 2 files");
  if (sum_size_gb <= 0.0)
    throw std::invalid_argument("aggregation_coefficient: non-positive size");
  const double u_rf = pricing.read_op_price(tier);
  if (u_rf <= 0.0) return -1.0;  // operations are free: never beneficial
  // Ω = saving / (u_rf · ΣD): same sign as the saving, same scale as the
  // paper's Eq. (16) when writes_per_day == 0.
  return aggregation_saving(pricing, tier, n, sum_size_gb, rdc_per_day,
                            period_days, writes_per_day) /
         (u_rf * sum_size_gb);
}

double aggregation_saving(const pricing::PricingPolicy& pricing,
                          pricing::StorageTier tier, std::size_t n,
                          double sum_size_gb, double rdc_per_day,
                          std::size_t period_days, double writes_per_day) {
  const double u_rf = pricing.read_op_price(tier);
  const double u_p = storage_price_per_period(pricing, tier, period_days);
  const double rdc_period = rdc_per_day * static_cast<double>(period_days);
  const double write_cost =
      pricing.write_cost(tier, writes_per_day, sum_size_gb) *
      static_cast<double>(period_days);
  return static_cast<double>(n - 1) * rdc_period * u_rf -
         u_p * sum_size_gb - write_cost;
}

std::vector<GroupEvaluation> evaluate_groups(
    const trace::RequestTrace& trace, const pricing::PricingPolicy& pricing,
    const AggregationConfig& config, std::size_t period_start) {
  std::vector<GroupEvaluation> evaluations;
  evaluations.reserve(trace.groups().size());
  const std::size_t period_end =
      std::min(trace.days(), period_start + config.period_days);
  for (std::size_t g = 0; g < trace.groups().size(); ++g) {
    const trace::CoRequestGroup& group = trace.groups()[g];
    double sum_size = 0.0;
    double writes_per_day = 0.0;
    for (trace::FileId m : group.members) {
      sum_size += trace.file(m).size_gb;
      if (config.account_replica_writes && period_end > period_start) {
        const auto& w = trace.file(m).writes;
        for (std::size_t t = period_start; t < period_end; ++t)
          writes_per_day += w[t];
      }
    }
    if (period_end > period_start)
      writes_per_day /= static_cast<double>(period_end - period_start);
    const double rdc = mean_concurrent_rate(group, period_start,
                                            config.period_days, trace.days());
    GroupEvaluation eval;
    eval.group_index = g;
    eval.omega = aggregation_coefficient(pricing, config.replica_tier,
                                         group.members.size(), sum_size, rdc,
                                         config.period_days, writes_per_day);
    eval.saving_per_period = aggregation_saving(
        pricing, config.replica_tier, group.members.size(), sum_size, rdc,
        config.period_days, writes_per_day);
    evaluations.push_back(eval);
  }
  std::sort(evaluations.begin(), evaluations.end(),
            [](const GroupEvaluation& a, const GroupEvaluation& b) {
              return a.omega > b.omega;
            });
  for (std::size_t rank = 0;
       rank < evaluations.size() && rank < config.top_psi; ++rank) {
    if (evaluations[rank].omega > 0.0) evaluations[rank].selected = true;
  }
  return evaluations;
}

trace::RequestTrace apply_aggregation(
    const trace::RequestTrace& trace,
    const std::vector<GroupEvaluation>& evaluations,
    std::vector<trace::FileId>* replica_ids) {
  trace::RequestTrace result = trace;  // deep copy
  auto& files = result.mutable_files();
  const std::size_t days = trace.days();

  std::vector<bool> consumed(trace.groups().size(), false);
  for (const GroupEvaluation& eval : evaluations) {
    if (!eval.selected) continue;
    const trace::CoRequestGroup& group = trace.groups()[eval.group_index];
    consumed[eval.group_index] = true;

    trace::FileRecord replica;
    replica.name = "aggregate";
    replica.reads = group.concurrent_reads;
    replica.writes.assign(days, 0.0);
    replica.size_gb = 0.0;
    for (trace::FileId m : group.members) {
      const trace::FileRecord& member = trace.file(m);
      replica.name += "+" + member.name;
      replica.size_gb += member.size_gb;
      for (std::size_t t = 0; t < days; ++t) {
        replica.writes[t] += member.writes[t];
        // The concurrent requests are now served by the replica.
        files[m].reads[t] =
            std::max(0.0, files[m].reads[t] - group.concurrent_reads[t]);
      }
    }
    if (replica_ids)
      replica_ids->push_back(static_cast<trace::FileId>(files.size()));
    files.push_back(std::move(replica));
  }

  // Drop aggregated groups from the result (their concurrency is absorbed).
  std::vector<trace::CoRequestGroup> remaining;
  for (std::size_t g = 0; g < trace.groups().size(); ++g) {
    if (!consumed[g]) remaining.push_back(trace.groups()[g]);
  }
  result.mutable_groups() = std::move(remaining);
  result.validate();
  return result;
}

AggregationController::AggregationController(
    const pricing::PricingPolicy& pricing, AggregationConfig config)
    : pricing_(pricing), config_(config) {}

const std::vector<std::size_t>& AggregationController::on_period_start(
    const trace::RequestTrace& trace, std::size_t period_start) {
  if (negative_streak_.size() != trace.groups().size())
    negative_streak_.assign(trace.groups().size(), 0);

  const std::vector<GroupEvaluation> evaluations =
      evaluate_groups(trace, pricing_, config_, period_start);

  std::vector<bool> was_active(trace.groups().size(), false);
  for (std::size_t g : active_) was_active[g] = true;

  std::vector<std::size_t> next;
  for (const GroupEvaluation& eval : evaluations) {
    const std::size_t g = eval.group_index;
    if (eval.omega < 0.0) {
      ++negative_streak_[g];
    } else {
      negative_streak_[g] = 0;
    }
    if (eval.selected) {
      // Newly admitted or still profitable: (re)activate.
      next.push_back(g);
    } else if (was_active[g] &&
               negative_streak_[g] < config_.eviction_periods) {
      // Not in this period's top-Ψ but not yet persistently unprofitable:
      // the replica already exists, keep it (Algorithm 2 only deletes after
      // a long-term negative Ω).
      next.push_back(g);
    } else if (was_active[g]) {
      ++evictions_;
    }
  }
  std::sort(next.begin(), next.end());
  active_ = std::move(next);
  return active_;
}

}  // namespace minicost::core
