#pragma once
// The paper's Optimal baseline (Sec. 6.1): the "offline-brutal-force method"
// that, knowing every future request frequency, picks the cheapest tier
// sequence for every file — the lower bound for all online methods.
//
// Because the total cost (Eq. 5) is separable across files, the joint
// Γ^(N·T) search decomposes into N independent per-file minimizations, each
// solved *exactly* by dynamic programming over (day, tier) in O(T·Γ²):
//   dp[t][j] = day_cost(t, j) + min_i ( dp[t-1][i] + change_cost(i, j) ).
// exhaustive_sequence() enumerates all Γ^T sequences and is used by the
// property tests to prove the DP returns the same minimum.

#include <vector>

#include "core/policy.hpp"

namespace minicost::core {

struct OptimalSequence {
  std::vector<pricing::StorageTier> tiers;  ///< one per day in the window
  double cost = 0.0;                        ///< minimal total cost
};

/// Exact per-file optimum over days [start_day, end_day) of `file`,
/// starting from `initial` (a change away from `initial` on the first day
/// is charged iff charge_initial).
OptimalSequence optimal_sequence(const pricing::PricingPolicy& pricing,
                                 const trace::FileRecord& file,
                                 std::size_t start_day, std::size_t end_day,
                                 pricing::StorageTier initial,
                                 bool charge_initial = true);

/// Brute force over all Γ^(window) sequences; exponential — tests only.
OptimalSequence exhaustive_sequence(const pricing::PricingPolicy& pricing,
                                    const trace::FileRecord& file,
                                    std::size_t start_day, std::size_t end_day,
                                    pricing::StorageTier initial,
                                    bool charge_initial = true);

class OptimalPolicy final : public TieringPolicy {
 public:
  /// charge_initial: whether moving off the initial tier on the first
  /// decision day costs Cc (matches the simulator's day->day accounting
  /// when the window continues an existing deployment).
  explicit OptimalPolicy(bool charge_initial = true)
      : charge_initial_(charge_initial) {}

  std::string name() const override { return "Optimal"; }
  Knowledge knowledge() const noexcept override { return Knowledge::kFullTrace; }

  /// Runs the per-file DP for the whole window (parallel over files).
  void prepare(const PlanContext& context) override;

  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  /// Batch path: one pass copying the precomputed sequences' day column.
  void decide_day(const PlanContext& context, std::size_t day,
                  std::span<const pricing::StorageTier> current,
                  std::span<pricing::StorageTier> out_plan) override;

  /// The precomputed minimal total cost over all files (valid after
  /// prepare); equals what the simulator will bill for the same window.
  double planned_cost() const noexcept { return planned_cost_; }

 private:
  bool charge_initial_;
  std::size_t start_day_ = 0;
  std::vector<std::vector<pricing::StorageTier>> sequences_;
  double planned_cost_ = 0.0;
};

}  // namespace minicost::core
