#pragma once
// MiniCost's online policy: the trained A3C agent deployed as a
// TieringPolicy (paper Sec. 5.1: "After the DQN is trained, we deploy the
// trained DQN in the agent server... Everyday, the trained agent runs one
// time for all data files"). Strictly online — only the request history up
// to (not including) the decision day is featurized.

#include "core/policy.hpp"
#include "rl/a3c.hpp"

namespace minicost::core {

class RlPolicy final : public TieringPolicy {
 public:
  /// Borrows the agent (must outlive the policy). greedy=true uses the
  /// argmax of π (deployment mode); false samples (training-style).
  explicit RlPolicy(rl::A3CAgent& agent, bool greedy = true)
      : agent_(agent), greedy_(greedy) {}

  std::string name() const override { return "MiniCost"; }
  Knowledge knowledge() const noexcept override { return Knowledge::kHistory; }

  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  /// Batch path: one A3CAgent::act_batch call — fused NN forwards sharded
  /// over the planning pool — instead of one locked forward per file.
  void decide_day(const PlanContext& context, std::size_t day,
                  std::span<const pricing::StorageTier> current,
                  std::span<pricing::StorageTier> out_plan) override;

 private:
  rl::A3CAgent& agent_;
  bool greedy_;
  std::vector<double> scratch_;
};

}  // namespace minicost::core
