#pragma once
// MiniCost's online policy: the trained A3C agent deployed as a
// TieringPolicy (paper Sec. 5.1: "After the DQN is trained, we deploy the
// trained DQN in the agent server... Everyday, the trained agent runs one
// time for all data files"). Strictly online — only the request history up
// to (not including) the decision day is featurized.

#include <filesystem>
#include <memory>

#include "core/policy.hpp"
#include "rl/a3c.hpp"

namespace minicost::core {

class RlPolicy final : public TieringPolicy {
 public:
  /// Borrows the agent (must outlive the policy). greedy=true uses the
  /// argmax of π (deployment mode); false samples (training-style).
  explicit RlPolicy(rl::A3CAgent& agent, bool greedy = true)
      : agent_(agent), greedy_(greedy) {}

  std::string name() const override { return "MiniCost"; }
  Knowledge knowledge() const noexcept override { return Knowledge::kHistory; }

  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  /// Batch path: one A3CAgent::act_batch call — fused NN forwards sharded
  /// over the planning pool — instead of one locked forward per file.
  /// When context.decision_cache is set, decisions are reused instead of
  /// recomputed (DESIGN.md §15): each file's exact decision state (read
  /// window bytes, write rate, size, tier, day phase) is probed against the
  /// cross-day cache under the agent's decision fingerprint; the misses are
  /// deduplicated to unique states, only those rows are featurized (written
  /// straight into the batch buffer) and forwarded, and results scatter
  /// back to every duplicate and into the cache. Byte-identical to the
  /// uncached path because keys are exact and the network deterministic.
  void decide_day(const PlanContext& context, std::size_t day,
                  std::span<const pricing::StorageTier> current,
                  std::span<pricing::StorageTier> out_plan) override;

 private:
  void decide_day_cached(const PlanContext& context, std::size_t day,
                         std::span<const pricing::StorageTier> current,
                         std::span<pricing::StorageTier> out_plan);

  rl::A3CAgent& agent_;
  bool greedy_;
  std::vector<double> scratch_;
};

/// Configuration for a self-contained MiniCost policy (CLI deployments that
/// have no externally-owned agent).
struct RlPolicyOptions {
  rl::A3CConfig agent;  ///< network/feature architecture
  /// Deterministic-init seed; two policies built from the same options are
  /// byte-identical deciders.
  std::uint64_t seed = 1234;
  /// Checkpoint to load (A3CAgent::save format). Empty = fresh
  /// deterministic initialization (untrained but fully functional — it
  /// still exercises the real featurize/forward/cache pipeline).
  std::filesystem::path checkpoint;
  bool greedy = true;
};

/// An RlPolicy that owns its agent: for `minicost plan --policy rl` and
/// other callers with no training loop in scope.
std::unique_ptr<TieringPolicy> make_rl_policy(const RlPolicyOptions& options);

}  // namespace minicost::core
