#pragma once
// Multi-datacenter placement — the paper's Sec. 4.1/4.2.1 generalization:
// files "are distributed among one or multiple CSPs' datacenters denoted by
// the set Ds. Each datacenter has its own pricing policy", and "Γ can be
// easily adjusted for multiple CSPs since multiple CSPs have more ... types".
//
// A placement is a (datacenter, tier) pair; the joint action space has
// |Ds| · Γ options per file per day. Moving between tiers inside a
// datacenter costs the policy's tier-change price; moving bytes across
// datacenters costs an egress price per GB on top. Costs stay separable per
// file, so the offline optimum is still an exact per-file DP — now over
// |Ds|·Γ states.

#include <string>
#include <vector>

#include "pricing/catalog.hpp"
#include "trace/trace.hpp"

namespace minicost::core {

/// One (datacenter, tier) slot.
struct Placement {
  std::size_t datacenter = 0;
  pricing::StorageTier tier = pricing::StorageTier::kHot;

  friend bool operator==(const Placement&, const Placement&) = default;
};

struct MultiCloudConfig {
  /// $ per GB moved between datacenters (egress + ingest), on top of the
  /// destination's tier-change price.
  double cross_dc_transfer_per_gb = 0.02;
};

class MultiCloudPlanner {
 public:
  /// The catalog is copied; it must contain at least one datacenter.
  MultiCloudPlanner(pricing::PriceCatalog catalog, MultiCloudConfig config = {});

  const pricing::PriceCatalog& catalog() const noexcept { return catalog_; }
  std::size_t placement_count() const noexcept;

  /// Index <-> placement bijection over the |Ds|·Γ joint space.
  Placement placement_from_index(std::size_t index) const;
  std::size_t placement_index(const Placement& placement) const;

  /// Cost of one file-day in `placement` (no movement charges).
  double day_cost(const Placement& placement, double reads, double writes,
                  double gb) const;

  /// One-time cost of moving a file of `gb` from one placement to another;
  /// zero when they are equal.
  double move_cost(const Placement& from, const Placement& to, double gb) const;

  /// Cheapest static placement for an average usage profile.
  Placement best_static_placement(double avg_reads, double avg_writes,
                                  double gb) const;

  /// Exact per-file optimum over days [start, end): DP over placements.
  struct Sequence {
    std::vector<Placement> placements;
    double cost = 0.0;
  };
  Sequence optimal_sequence(const trace::FileRecord& file, std::size_t start,
                            std::size_t end, const Placement& initial,
                            bool charge_initial = true) const;

  /// Bills a concrete per-day placement sequence for one file (the
  /// verification mirror of optimal_sequence).
  double sequence_cost(const trace::FileRecord& file,
                       const std::vector<Placement>& placements,
                       const Placement& initial,
                       bool charge_initial = true) const;

  /// Whole-trace summary: optimal multi-cloud bill vs the best single-DC
  /// bill (every file confined to one datacenter, chosen globally).
  struct Comparison {
    double best_single_dc_cost = 0.0;
    std::size_t best_single_dc = 0;
    double multi_cloud_cost = 0.0;
    double saving() const noexcept {
      return best_single_dc_cost - multi_cloud_cost;
    }
  };
  Comparison compare(const trace::RequestTrace& trace, std::size_t start,
                     std::size_t end) const;

 private:
  pricing::PriceCatalog catalog_;
  MultiCloudConfig config_;
};

}  // namespace minicost::core
