#pragma once
// The paper's Greedy comparison method (Sec. 6.1): a per-day greedy that
// "calculates the cost difference between putting files into [each tier]
// including the cost of changing the data storage type, then assigns the
// data file into the storage type with lower total cost" — i.e. it chases
// "the minimum money cost only for the next day" (Sec. 3.2) with no
// long-term planning.
//
// GreedyPolicy is the deployable online form: it prices the coming day with
// the most recent *observed* frequency (yesterday's). That one-day
// information lag plus the change-cost hysteresis is exactly the myopia the
// paper blames for Greedy's gap to MiniCost: it joins request spikes a day
// late, leaves them a day late, and flip-flops on noisy files near the tier
// crossover. ClairvoyantGreedyPolicy is the stronger variant that sees the
// decision day's true frequencies (one-day lookahead oracle); the ablation
// bench compares both.

#include "core/policy.hpp"

namespace minicost::core {

class GreedyPolicy final : public TieringPolicy {
 public:
  /// The paper's Greedy weighs "putting files into cold and hot" only —
  /// it never places a file in archive (a heuristic would not risk the
  /// hours-long archive retrieval latency on a one-day cost estimate).
  /// Forfeiting the archive savings on the large population of rarely-read
  /// files (Fig. 2) is what separates Greedy from MiniCost and Optimal in
  /// Figures 7/8. Pass include_archive=true for the 3-tier ablation.
  explicit GreedyPolicy(bool include_archive = false)
      : include_archive_(include_archive) {}

  std::string name() const override {
    return include_archive_ ? "Greedy-3tier" : "Greedy";
  }
  Knowledge knowledge() const noexcept override { return Knowledge::kHistory; }

  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  /// Pure per-file pricing — the batched decide_day shards it on the pool.
  bool thread_safe_decide() const noexcept override { return true; }

 private:
  bool include_archive_;
};

/// One-day-lookahead oracle variant: sees the decision day's true
/// frequencies (ablation only; not deployable).
class ClairvoyantGreedyPolicy final : public TieringPolicy {
 public:
  explicit ClairvoyantGreedyPolicy(bool include_archive = false)
      : include_archive_(include_archive) {}

  std::string name() const override { return "Greedy-1day-oracle"; }
  Knowledge knowledge() const noexcept override { return Knowledge::kNextDay; }

  pricing::StorageTier decide(const PlanContext& context, trace::FileId file,
                              std::size_t day,
                              pricing::StorageTier current) override;

  bool thread_safe_decide() const noexcept override { return true; }

 private:
  bool include_archive_;
};

}  // namespace minicost::core
