#pragma once
// MiniCost, end to end: the facade a cloud customer embeds. Owns the
// pricing policy, the A3C agent, and the evaluation harness; reproduces the
// paper's full protocol:
//   1. split the trace 80/20 into train and test file sets (Sec. 6.1);
//   2. train the agent on the training files;
//   3. every day, run the trained agent once over all (test) files and
//      re-tier them (Sec. 5.1);
//   4. optionally enable the concurrent-request aggregation enhancement
//      (Sec. 5.2) with weekly re-evaluation;
//   5. compare against the Hot / Cold / Greedy / Optimal baselines.

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/aggregation.hpp"
#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/planner.hpp"
#include "pricing/policy.hpp"
#include "rl/a3c.hpp"
#include "trace/trace.hpp"

namespace minicost::core {

struct MiniCostConfig {
  pricing::PricingPolicy pricing = pricing::PricingPolicy::azure_2020();
  rl::A3CConfig agent;
  std::size_t train_episodes = 3000;
  double train_fraction = 0.8;  ///< paper: 80% train / 20% test
  std::uint64_t seed = 42;
  /// Aggregation enhancement ("MiniCost w/ E"); disabled when nullopt.
  std::optional<AggregationConfig> aggregation;
  /// Pool evaluate() fans out on (independent policy runs, batched planning
  /// and billing inside each run); nullptr = the process-shared pool. The
  /// report is byte-identical for every pool size.
  util::ThreadPool* pool = nullptr;
};

struct PolicyOutcome {
  PlanResult result;
  double total_cost = 0.0;
  double optimal_action_rate = 0.0;  ///< agreement with Optimal's plan
};

struct EvaluationReport {
  /// Keyed by policy name (Hot, Cold, Greedy, MiniCost, Optimal, and
  /// MiniCost w/E when aggregation is enabled).
  std::map<std::string, PolicyOutcome> outcomes;
  std::size_t start_day = 0;
  std::size_t end_day = 0;
  std::size_t files = 0;
};

class MiniCostSystem {
 public:
  explicit MiniCostSystem(MiniCostConfig config);

  const MiniCostConfig& config() const noexcept { return config_; }
  rl::A3CAgent& agent() noexcept { return agent_; }

  /// Trains the agent on `trace` (typically the training split).
  void train(const trace::RequestTrace& trace,
             const rl::TrainOptions& options = {});

  /// Runs all policies over [start_day, end_day) of `trace` and reports
  /// totals, per-policy plans, and optimal-action rates. Initial tiers come
  /// from static_initial_tiers over [0, start_day).
  EvaluationReport evaluate(const trace::RequestTrace& trace,
                            std::size_t start_day, std::size_t end_day,
                            bool include_aggregated = true);

  /// One day of production operation: decide tiers for every file of
  /// `trace` on `day` given `current` tiers (the deployed Sec. 5.1 loop).
  sim::DayPlan plan_day(const trace::RequestTrace& trace, std::size_t day,
                        const std::vector<pricing::StorageTier>& current);

 private:
  MiniCostConfig config_;
  rl::A3CAgent agent_;
};

}  // namespace minicost::core
