#include "store/trace_writer.hpp"

#include <cstring>
#include <stdexcept>

#include "store/crc32.hpp"

namespace minicost::store {
namespace {

void append_bytes(std::vector<std::byte>& buffer, const void* data,
                  std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  buffer.insert(buffer.end(), p, p + len);
}

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path, std::size_t days)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      days_(days),
      stride_(series_stride_bytes(days)) {
  if (days_ == 0)
    throw std::runtime_error("TraceWriter: trace must span at least one day");
  if (!out_)
    throw std::runtime_error("TraceWriter: cannot create " + path.string());
  // Reserve the header block; it is rewritten with real contents (and the
  // checksums that only finish() can know) at the end.
  const std::vector<char> zeros(kHeaderBytes, 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  pad_.assign(kSeriesAlign, std::byte{0});
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::write_series(std::span<const double> series) {
  out_.write(reinterpret_cast<const char*>(series.data()),
             static_cast<std::streamsize>(series.size_bytes()));
  crc_freq_ = crc32(series.data(), series.size_bytes(), crc_freq_);
  const std::size_t padding = static_cast<std::size_t>(stride_) - series.size_bytes();
  if (padding > 0) {
    out_.write(reinterpret_cast<const char*>(pad_.data()),
               static_cast<std::streamsize>(padding));
    crc_freq_ = crc32(pad_.data(), padding, crc_freq_);
  }
}

void TraceWriter::add_file(std::string_view name, double size_gb,
                           std::span<const double> reads,
                           std::span<const double> writes) {
  if (finished_)
    throw std::runtime_error("TraceWriter::add_file: already finished");
  if (reads.size() != days_ || writes.size() != days_)
    throw std::invalid_argument(
        "TraceWriter::add_file: series length != days");
  FileEntry entry;
  entry.name_offset = names_.size();
  entry.name_bytes = static_cast<std::uint32_t>(name.size());
  entry.size_gb = size_gb;
  names_.append(name);
  entries_.push_back(entry);
  write_series(reads);
  write_series(writes);
  if (!out_)
    throw std::runtime_error("TraceWriter::add_file: write failed on " +
                             path_.string());
}

void TraceWriter::add_group(std::span<const trace::FileId> members,
                            std::span<const double> concurrent_reads) {
  if (finished_)
    throw std::runtime_error("TraceWriter::add_group: already finished");
  if (members.size() < 2)
    throw std::invalid_argument("TraceWriter::add_group: needs >= 2 members");
  if (concurrent_reads.size() != days_)
    throw std::invalid_argument(
        "TraceWriter::add_group: series length != days");
  const std::uint32_t count = static_cast<std::uint32_t>(members.size());
  const std::uint32_t reserved = 0;
  append_bytes(groups_, &count, sizeof count);
  append_bytes(groups_, &reserved, sizeof reserved);
  append_bytes(groups_, members.data(), members.size_bytes());
  while (groups_.size() % kGroupAlign != 0) groups_.push_back(std::byte{0});
  append_bytes(groups_, concurrent_reads.data(),
               concurrent_reads.size_bytes());
  ++group_count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  // Group member ids can only be validated once the file count is final.
  {
    std::size_t pos = 0;
    for (std::uint64_t g = 0; g < group_count_; ++g) {
      std::uint32_t count = 0;
      std::memcpy(&count, groups_.data() + pos, sizeof count);
      pos += 2 * sizeof(std::uint32_t);
      for (std::uint32_t m = 0; m < count; ++m) {
        trace::FileId id = 0;
        std::memcpy(&id, groups_.data() + pos, sizeof id);
        if (id >= entries_.size())
          throw std::runtime_error(
              "TraceWriter::finish: group member id " + std::to_string(id) +
              " out of range (only " + std::to_string(entries_.size()) +
              " files were added)");
        pos += sizeof id;
      }
      pos = static_cast<std::size_t>(round_up(pos, kGroupAlign));
      pos += days_ * sizeof(double);
    }
  }

  Header header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian_tag = kEndianTag;
  header.version = kFormatVersion;
  header.days = days_;
  header.file_count = entries_.size();
  header.group_count = group_count_;
  header.series_stride = stride_;
  header.freq_offset = kHeaderBytes;
  header.freq_bytes = entries_.size() * 2 * stride_;
  header.file_table_offset = header.freq_offset + header.freq_bytes;
  header.file_table_bytes = entries_.size() * sizeof(FileEntry);
  header.names_offset = header.file_table_offset + header.file_table_bytes;
  header.names_bytes = names_.size();
  header.groups_offset =
      round_up(header.names_offset + header.names_bytes, kGroupAlign);
  header.groups_bytes = groups_.size();
  header.total_bytes = header.groups_offset + header.groups_bytes;
  header.crc_freq = crc_freq_;
  header.crc_file_table =
      crc32(entries_.data(), entries_.size() * sizeof(FileEntry));
  header.crc_names = crc32(names_.data(), names_.size());
  header.crc_groups = crc32(groups_.data(), groups_.size());

  out_.write(reinterpret_cast<const char*>(entries_.data()),
             static_cast<std::streamsize>(header.file_table_bytes));
  out_.write(names_.data(), static_cast<std::streamsize>(names_.size()));
  const std::uint64_t names_end = header.names_offset + header.names_bytes;
  for (std::uint64_t i = names_end; i < header.groups_offset; ++i)
    out_.put('\0');
  out_.write(reinterpret_cast<const char*>(groups_.data()),
             static_cast<std::streamsize>(groups_.size()));

  header.crc_header = crc32(&header, offsetof(Header, crc_header));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header),
             static_cast<std::streamsize>(sizeof header));
  out_.flush();
  if (!out_)
    throw std::runtime_error("TraceWriter::finish: write failed on " +
                             path_.string());
  out_.close();
  finished_ = true;
}

void pack_trace(const trace::RequestTrace& trace,
                const std::filesystem::path& path) {
  TraceWriter writer(path, trace.days());
  for (const trace::FileRecord& f : trace.files())
    writer.add_file(f.name, f.size_gb, f.reads, f.writes);
  for (const trace::CoRequestGroup& g : trace.groups())
    writer.add_group(g.members, g.concurrent_reads);
  writer.finish();
}

}  // namespace minicost::store
