#include "store/trace_writer.hpp"

#include <cstring>
#include <stdexcept>

#include "codec/chunk_codec.hpp"
#include "store/crc32.hpp"

namespace minicost::store {
namespace {

void append_bytes(std::vector<std::byte>& buffer, const void* data,
                  std::size_t len) {
  const auto* p = static_cast<const std::byte*>(data);
  buffer.insert(buffer.end(), p, p + len);
}

std::uint32_t resolve_codec(const std::string& name) {
  const codec::ChunkCodec* c = codec::codec_by_name(name);
  if (c != nullptr) return c->id();
  // A reserved name that didn't resolve means the codec exists but was
  // compiled out; say so rather than calling it unknown.
  for (std::uint32_t id = 0; !codec::reserved_codec_name(id).empty(); ++id)
    if (codec::reserved_codec_name(id) == name)
      throw std::invalid_argument("TraceWriter: codec '" + name +
                                  "' is not available in this build "
                                  "(MINICOST_WITH_ZSTD=OFF)");
  throw std::invalid_argument("TraceWriter: unknown codec '" + name +
                              "' (available: " +
                              codec::available_codec_names() + ")");
}

}  // namespace

TraceWriter::TraceWriter(const std::filesystem::path& path, std::size_t days)
    : TraceWriter(path, days, WriterOptions{}) {}

TraceWriter::TraceWriter(const std::filesystem::path& path, std::size_t days,
                         const WriterOptions& options)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      days_(days),
      stride_(series_stride_bytes(days)) {
  if (days_ == 0)
    throw std::runtime_error("TraceWriter: trace must span at least one day");
  if (!out_)
    throw std::runtime_error("TraceWriter: cannot create " + path.string());
  if (!options.codec.empty()) {
    v2_ = true;
    codec_id_ = resolve_codec(options.codec);
    if (options.files_per_chunk == 0 ||
        options.files_per_chunk > kMaxFilesPerChunk)
      throw std::invalid_argument(
          "TraceWriter: files_per_chunk must be in [1, " +
          std::to_string(kMaxFilesPerChunk) + "] (got " +
          std::to_string(options.files_per_chunk) + ")");
    files_per_chunk_ = options.files_per_chunk;
    chunk_raw_.reserve(static_cast<std::size_t>(files_per_chunk_) * 2 *
                       static_cast<std::size_t>(stride_));
  }
  // Reserve the header block; it is rewritten with real contents (and the
  // checksums that only finish() can know) at the end.
  const std::vector<char> zeros(kHeaderBytes, 0);
  out_.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  pad_.assign(kSeriesAlign, std::byte{0});
}

TraceWriter::~TraceWriter() = default;

void TraceWriter::write_series(std::span<const double> series) {
  out_.write(reinterpret_cast<const char*>(series.data()),
             static_cast<std::streamsize>(series.size_bytes()));
  crc_freq_ = crc32(series.data(), series.size_bytes(), crc_freq_);
  const std::size_t padding = static_cast<std::size_t>(stride_) - series.size_bytes();
  if (padding > 0) {
    out_.write(reinterpret_cast<const char*>(pad_.data()),
               static_cast<std::streamsize>(padding));
    crc_freq_ = crc32(pad_.data(), padding, crc_freq_);
  }
}

void TraceWriter::buffer_series(std::span<const double> series) {
  append_bytes(chunk_raw_, series.data(), series.size_bytes());
  const std::size_t padding =
      static_cast<std::size_t>(stride_) - series.size_bytes();
  if (padding > 0) append_bytes(chunk_raw_, pad_.data(), padding);
}

void TraceWriter::flush_chunk() {
  if (chunk_files_ == 0) return;
  const codec::ChunkLayout layout{chunk_files_, days_,
                                  static_cast<std::size_t>(stride_)};
  const codec::EncodedChunk encoded =
      codec::encode_chunk(codec_id_, layout, chunk_raw_);
  ChunkEntry entry;
  entry.offset = freq_pos_;
  entry.encoded_bytes = encoded.bytes.size();
  entry.raw_bytes = layout.raw_bytes();
  entry.codec_id = encoded.codec_id;
  entry.crc = crc32(encoded.bytes.data(), encoded.bytes.size());
  chunks_.push_back(entry);
  out_.write(reinterpret_cast<const char*>(encoded.bytes.data()),
             static_cast<std::streamsize>(encoded.bytes.size()));
  // crc_freq keeps its v1 meaning — CRC of the frequency section's on-disk
  // bytes — which in v2 is the concatenated encoded chunks.
  crc_freq_ = crc32(encoded.bytes.data(), encoded.bytes.size(), crc_freq_);
  freq_pos_ += encoded.bytes.size();
  chunk_raw_.clear();
  chunk_files_ = 0;
}

void TraceWriter::add_file(std::string_view name, double size_gb,
                           std::span<const double> reads,
                           std::span<const double> writes) {
  if (finished_)
    throw std::runtime_error("TraceWriter::add_file: already finished");
  if (reads.size() != days_ || writes.size() != days_)
    throw std::invalid_argument(
        "TraceWriter::add_file: series length != days");
  FileEntry entry;
  entry.name_offset = names_.size();
  entry.name_bytes = static_cast<std::uint32_t>(name.size());
  entry.size_gb = size_gb;
  names_.append(name);
  entries_.push_back(entry);
  if (v2_) {
    buffer_series(reads);
    buffer_series(writes);
    if (++chunk_files_ == files_per_chunk_) flush_chunk();
  } else {
    write_series(reads);
    write_series(writes);
  }
  if (!out_)
    throw std::runtime_error("TraceWriter::add_file: write failed on " +
                             path_.string());
}

void TraceWriter::add_group(std::span<const trace::FileId> members,
                            std::span<const double> concurrent_reads) {
  if (finished_)
    throw std::runtime_error("TraceWriter::add_group: already finished");
  if (members.size() < 2)
    throw std::invalid_argument("TraceWriter::add_group: needs >= 2 members");
  if (concurrent_reads.size() != days_)
    throw std::invalid_argument(
        "TraceWriter::add_group: series length != days");
  const std::uint32_t count = static_cast<std::uint32_t>(members.size());
  const std::uint32_t reserved = 0;
  append_bytes(groups_, &count, sizeof count);
  append_bytes(groups_, &reserved, sizeof reserved);
  append_bytes(groups_, members.data(), members.size_bytes());
  while (groups_.size() % kGroupAlign != 0) groups_.push_back(std::byte{0});
  append_bytes(groups_, concurrent_reads.data(),
               concurrent_reads.size_bytes());
  ++group_count_;
}

void TraceWriter::finish() {
  if (finished_) return;
  // Group member ids can only be validated once the file count is final.
  {
    std::size_t pos = 0;
    for (std::uint64_t g = 0; g < group_count_; ++g) {
      std::uint32_t count = 0;
      std::memcpy(&count, groups_.data() + pos, sizeof count);
      pos += 2 * sizeof(std::uint32_t);
      for (std::uint32_t m = 0; m < count; ++m) {
        trace::FileId id = 0;
        std::memcpy(&id, groups_.data() + pos, sizeof id);
        if (id >= entries_.size())
          throw std::runtime_error(
              "TraceWriter::finish: group member id " + std::to_string(id) +
              " out of range (only " + std::to_string(entries_.size()) +
              " files were added)");
        pos += sizeof id;
      }
      pos = static_cast<std::size_t>(round_up(pos, kGroupAlign));
      pos += days_ * sizeof(double);
    }
  }

  if (v2_) flush_chunk();  // the final, possibly partial, chunk

  Header header;
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.endian_tag = kEndianTag;
  header.version = v2_ ? kFormatVersionV2 : kFormatVersion;
  header.days = days_;
  header.file_count = entries_.size();
  header.group_count = group_count_;
  header.series_stride = stride_;
  header.freq_offset = kHeaderBytes;
  header.freq_bytes = v2_ ? freq_pos_ : entries_.size() * 2 * stride_;

  HeaderV2Ext ext;
  std::uint64_t metadata_offset = header.freq_offset + header.freq_bytes;
  if (v2_) {
    ext.codec_id = codec_id_;
    ext.files_per_chunk = files_per_chunk_;
    ext.chunk_count = chunks_.size();
    ext.chunk_table_offset = round_up(metadata_offset, kGroupAlign);
    ext.chunk_table_bytes = chunks_.size() * sizeof(ChunkEntry);
    ext.freq_raw_bytes = entries_.size() * 2 * stride_;
    ext.crc_chunk_table =
        crc32(chunks_.data(), chunks_.size() * sizeof(ChunkEntry));
    ext.crc_ext = crc32(&ext, offsetof(HeaderV2Ext, crc_ext));
    for (std::uint64_t i = metadata_offset; i < ext.chunk_table_offset; ++i)
      out_.put('\0');
    out_.write(reinterpret_cast<const char*>(chunks_.data()),
               static_cast<std::streamsize>(ext.chunk_table_bytes));
    metadata_offset = ext.chunk_table_offset + ext.chunk_table_bytes;
  }

  header.file_table_offset = metadata_offset;
  header.file_table_bytes = entries_.size() * sizeof(FileEntry);
  header.names_offset = header.file_table_offset + header.file_table_bytes;
  header.names_bytes = names_.size();
  header.groups_offset =
      round_up(header.names_offset + header.names_bytes, kGroupAlign);
  header.groups_bytes = groups_.size();
  header.total_bytes = header.groups_offset + header.groups_bytes;
  header.crc_freq = crc_freq_;
  header.crc_file_table =
      crc32(entries_.data(), entries_.size() * sizeof(FileEntry));
  header.crc_names = crc32(names_.data(), names_.size());
  header.crc_groups = crc32(groups_.data(), groups_.size());

  out_.write(reinterpret_cast<const char*>(entries_.data()),
             static_cast<std::streamsize>(header.file_table_bytes));
  out_.write(names_.data(), static_cast<std::streamsize>(names_.size()));
  const std::uint64_t names_end = header.names_offset + header.names_bytes;
  for (std::uint64_t i = names_end; i < header.groups_offset; ++i)
    out_.put('\0');
  out_.write(reinterpret_cast<const char*>(groups_.data()),
             static_cast<std::streamsize>(groups_.size()));

  header.crc_header = crc32(&header, offsetof(Header, crc_header));
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(&header),
             static_cast<std::streamsize>(sizeof header));
  if (v2_) {
    out_.seekp(static_cast<std::streamoff>(kV2ExtOffset));
    out_.write(reinterpret_cast<const char*>(&ext),
               static_cast<std::streamsize>(sizeof ext));
  }
  out_.flush();
  if (!out_)
    throw std::runtime_error("TraceWriter::finish: write failed on " +
                             path_.string());
  out_.close();
  finished_ = true;
}

void pack_trace(const trace::RequestTrace& trace,
                const std::filesystem::path& path) {
  pack_trace(trace, path, WriterOptions{});
}

void pack_trace(const trace::RequestTrace& trace,
                const std::filesystem::path& path,
                const WriterOptions& options) {
  TraceWriter writer(path, trace.days(), options);
  for (const trace::FileRecord& f : trace.files())
    writer.add_file(f.name, f.size_gb, f.reads, f.writes);
  for (const trace::CoRequestGroup& g : trace.groups())
    writer.add_group(g.members, g.concurrent_reads);
  writer.finish();
}

}  // namespace minicost::store
