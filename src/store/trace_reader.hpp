#pragma once
// Zero-copy mmap reader for the .mct columnar trace container (format.hpp).
//
// open() maps the file read-only and validates the header, section bounds,
// and all *metadata* checksums (file table, names, groups) — rejecting
// truncated files, foreign magic/endianness, versions from the future, and
// bit flips with a message naming what failed. The multi-GB frequency
// section is deliberately NOT paged in by open(); verify_checksums() (the
// `tracepack verify` path) does that full scan on demand.
//
// Per-file series come back as std::span<const double> straight into the
// mapping — 64-byte aligned, so the PR 1 SIMD kernels can consume them in
// place — and materialize_shard() builds an ordinary RequestTrace for any
// contiguous file range, which is what the shard-streamed evaluation driver
// (core/shard_eval.hpp) iterates over with O(shard) rather than O(trace)
// resident memory.

#include <cstdint>
#include <filesystem>
#include <future>
#include <span>
#include <string_view>
#include <vector>

#include "store/format.hpp"
#include "trace/trace.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace minicost::util {
class ThreadPool;
}  // namespace minicost::util

namespace minicost::store {

class TraceReader {
 public:
  /// Maps `path` and validates it (see file comment). Throws
  /// std::runtime_error with a "path: what failed" message on any problem.
  explicit TraceReader(const std::filesystem::path& path);
  ~TraceReader();

  // Moves transfer the decoded-frequency cache without locking: moving a
  // reader that another thread is concurrently using is already a race, so
  // the analysis is waived rather than pretending a lock would fix it.
  TraceReader(TraceReader&& other) noexcept MC_NO_THREAD_SAFETY_ANALYSIS;
  TraceReader& operator=(TraceReader&& other) noexcept
      MC_NO_THREAD_SAFETY_ANALYSIS;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  std::size_t days() const noexcept { return header_.days; }
  std::size_t file_count() const noexcept { return header_.file_count; }
  std::size_t group_count() const noexcept { return header_.group_count; }
  /// Whole-container size on disk, in bytes.
  std::uint64_t total_bytes() const noexcept { return header_.total_bytes; }
  const Header& header() const noexcept { return header_; }

  /// True for a version 2 (chunk-encoded) container.
  bool is_v2() const noexcept { return header_.version == kFormatVersionV2; }
  /// The v2 header extension; meaningful only when is_v2().
  const HeaderV2Ext& v2_ext() const noexcept { return ext_; }
  /// The v2 chunk table (empty for v1 containers).
  std::span<const ChunkEntry> chunk_table() const noexcept {
    return {chunk_table_, is_v2() ? ext_.chunk_count : 0};
  }
  /// Bytes the frequency section occupies once decoded (== freq_bytes for
  /// v1, where it is stored uncompressed).
  std::uint64_t freq_raw_bytes() const noexcept {
    return is_v2() ? ext_.freq_raw_bytes : header_.freq_bytes;
  }

  std::string_view name(std::size_t file) const;
  double size_gb(std::size_t file) const;
  /// The file's daily read/write series, 64-byte aligned. v1: mapped in
  /// place, zero copies. v2: served from a lazily-decoded resident copy of
  /// the whole frequency section (built once, under an internal lock) —
  /// random access over a chunked container costs O(section) memory, so the
  /// shard-sized paths go through materialize_shard() instead, which decodes
  /// only the overlapping chunks.
  std::span<const double> reads(std::size_t file) const;
  std::span<const double> writes(std::size_t file) const;

  struct GroupView {
    std::span<const trace::FileId> members;
    std::span<const double> concurrent_reads;
  };
  GroupView group(std::size_t index) const;

  /// Full-file integrity check including the frequency section (pages in
  /// the whole mapping). Throws std::runtime_error on the first mismatch.
  void verify_checksums() const;

  /// Copies files [first, first + count) into an ordinary RequestTrace.
  /// Co-request groups whose members all fall inside the range are included
  /// with members remapped to shard-local ids; groups straddling the range
  /// boundary are dropped (the shard evaluation path is defined for
  /// per-file policies, DESIGN.md §9). Throws std::out_of_range on a bad
  /// range.
  trace::RequestTrace materialize_shard(std::size_t first,
                                        std::size_t count) const;

  /// Posts materialize_shard(first, count) to `pool` (nullptr = the
  /// process-shared pool) and returns its future — the building block of
  /// the pipelined planning driver (core/plan_driver.hpp), which readies
  /// shard N+1 while shard N is being planned. The range is validated
  /// eagerly (std::out_of_range before anything is queued); the reader must
  /// outlive the future's completion. Do not call get() from inside a task
  /// running on the same pool — block only from driver threads.
  std::future<trace::RequestTrace> materialize_shard_async(
      std::size_t first, std::size_t count,
      util::ThreadPool* pool = nullptr) const;

  /// The whole trace as a RequestTrace (== materialize_shard(0, all)).
  trace::RequestTrace materialize() const;

  /// Advises the kernel to drop the resident frequency pages of files
  /// [first, first + count) (rounded inward to page boundaries). The data
  /// stays valid — later accesses fault it back in — but the process RSS
  /// stops accumulating mapped trace pages, which is what keeps a
  /// shard-streamed scan's footprint bounded by the shard, not the trace.
  void release_frequency_range(std::size_t first, std::size_t count) const;

 private:
  const std::byte* at(std::uint64_t offset) const noexcept {
    return base_ + offset;
  }
  void validate(const std::filesystem::path& path);
  void validate_v2(const std::filesystem::path& path);
  /// Files covered by chunk `index` (the last chunk may be partial).
  std::size_t chunk_file_count(std::size_t index) const noexcept;
  /// CRC-checks and decodes chunk `index` into `raw_out` (sized exactly
  /// chunk_table_[index].raw_bytes). Thread-safe: reads only the immutable
  /// mapping. Throws std::runtime_error on corruption.
  void decode_chunk_into(std::size_t index, std::span<std::byte> raw_out) const;
  /// v2 reads()/writes() backing store: decodes the whole frequency section
  /// once (64-byte aligned) and returns its base. Safe to call concurrently.
  const std::byte* decoded_freq_base() const;
  void collect_groups(std::size_t first, std::size_t count,
                      std::vector<trace::CoRequestGroup>& groups) const;

  const std::byte* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  Header header_{};
  HeaderV2Ext ext_{};  ///< zeroed for v1 containers
  const FileEntry* file_table_ = nullptr;
  const ChunkEntry* chunk_table_ = nullptr;  ///< v2 only
  /// Offset of each group record inside the group section (built on open;
  /// group records are variable-length so random access needs an index).
  std::vector<std::uint64_t> group_offsets_;
  /// Lazily-built decoded frequency section for v2 random access. The
  /// vector over-allocates by kSeriesAlign so decoded_base_ can be aligned;
  /// once built (empty -> full transition under freq_mutex_) the contents
  /// are immutable.
  mutable util::Mutex freq_mutex_;
  mutable std::vector<std::byte> decoded_freq_ MC_GUARDED_BY(freq_mutex_);
  mutable const std::byte* decoded_base_ MC_GUARDED_BY(freq_mutex_) = nullptr;
};

}  // namespace minicost::store
