#pragma once
// Zero-copy mmap reader for the .mct columnar trace container (format.hpp).
//
// open() maps the file read-only and validates the header, section bounds,
// and all *metadata* checksums (file table, names, groups) — rejecting
// truncated files, foreign magic/endianness, versions from the future, and
// bit flips with a message naming what failed. The multi-GB frequency
// section is deliberately NOT paged in by open(); verify_checksums() (the
// `tracepack verify` path) does that full scan on demand.
//
// Per-file series come back as std::span<const double> straight into the
// mapping — 64-byte aligned, so the PR 1 SIMD kernels can consume them in
// place — and materialize_shard() builds an ordinary RequestTrace for any
// contiguous file range, which is what the shard-streamed evaluation driver
// (core/shard_eval.hpp) iterates over with O(shard) rather than O(trace)
// resident memory.

#include <cstdint>
#include <filesystem>
#include <future>
#include <span>
#include <string_view>
#include <vector>

#include "store/format.hpp"
#include "trace/trace.hpp"

namespace minicost::util {
class ThreadPool;
}  // namespace minicost::util

namespace minicost::store {

class TraceReader {
 public:
  /// Maps `path` and validates it (see file comment). Throws
  /// std::runtime_error with a "path: what failed" message on any problem.
  explicit TraceReader(const std::filesystem::path& path);
  ~TraceReader();

  TraceReader(TraceReader&& other) noexcept;
  TraceReader& operator=(TraceReader&& other) noexcept;
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  std::size_t days() const noexcept { return header_.days; }
  std::size_t file_count() const noexcept { return header_.file_count; }
  std::size_t group_count() const noexcept { return header_.group_count; }
  /// Whole-container size on disk, in bytes.
  std::uint64_t total_bytes() const noexcept { return header_.total_bytes; }
  const Header& header() const noexcept { return header_; }

  std::string_view name(std::size_t file) const;
  double size_gb(std::size_t file) const;
  /// The file's daily read/write series, mapped in place (64-byte aligned).
  std::span<const double> reads(std::size_t file) const;
  std::span<const double> writes(std::size_t file) const;

  struct GroupView {
    std::span<const trace::FileId> members;
    std::span<const double> concurrent_reads;
  };
  GroupView group(std::size_t index) const;

  /// Full-file integrity check including the frequency section (pages in
  /// the whole mapping). Throws std::runtime_error on the first mismatch.
  void verify_checksums() const;

  /// Copies files [first, first + count) into an ordinary RequestTrace.
  /// Co-request groups whose members all fall inside the range are included
  /// with members remapped to shard-local ids; groups straddling the range
  /// boundary are dropped (the shard evaluation path is defined for
  /// per-file policies, DESIGN.md §9). Throws std::out_of_range on a bad
  /// range.
  trace::RequestTrace materialize_shard(std::size_t first,
                                        std::size_t count) const;

  /// Posts materialize_shard(first, count) to `pool` (nullptr = the
  /// process-shared pool) and returns its future — the building block of
  /// the pipelined planning driver (core/plan_driver.hpp), which readies
  /// shard N+1 while shard N is being planned. The range is validated
  /// eagerly (std::out_of_range before anything is queued); the reader must
  /// outlive the future's completion. Do not call get() from inside a task
  /// running on the same pool — block only from driver threads.
  std::future<trace::RequestTrace> materialize_shard_async(
      std::size_t first, std::size_t count,
      util::ThreadPool* pool = nullptr) const;

  /// The whole trace as a RequestTrace (== materialize_shard(0, all)).
  trace::RequestTrace materialize() const;

  /// Advises the kernel to drop the resident frequency pages of files
  /// [first, first + count) (rounded inward to page boundaries). The data
  /// stays valid — later accesses fault it back in — but the process RSS
  /// stops accumulating mapped trace pages, which is what keeps a
  /// shard-streamed scan's footprint bounded by the shard, not the trace.
  void release_frequency_range(std::size_t first, std::size_t count) const;

 private:
  const std::byte* at(std::uint64_t offset) const noexcept {
    return base_ + offset;
  }
  void validate(const std::filesystem::path& path);

  const std::byte* base_ = nullptr;
  std::size_t mapped_bytes_ = 0;
  Header header_{};
  const FileEntry* file_table_ = nullptr;
  /// Offset of each group record inside the group section (built on open;
  /// group records are variable-length so random access needs an index).
  std::vector<std::uint64_t> group_offsets_;
};

}  // namespace minicost::store
