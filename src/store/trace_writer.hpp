#pragma once
// Streaming writer for the .mct columnar trace container (format.hpp).
//
// Files are streamed one at a time — the frequency blocks go straight to
// disk while only the (small) file table, name blob, and group records are
// buffered — so a million-file trace packs with O(metadata) memory, not
// O(trace). Feed it from the synthetic generator
// (trace::generate_synthetic_files chunk by chunk), from a pagecounts
// aggregation, or from an existing in-RAM RequestTrace via pack_trace().
//
// Usage:
//   TraceWriter w(path, days);            // v1, or pass WriterOptions for v2
//   for each file:  w.add_file(name, size_gb, reads, writes);
//   for each group: w.add_group(members, concurrent_reads);
//   w.finish();   // writes metadata sections + checksummed header
//
// With a non-empty WriterOptions::codec the writer emits a version 2
// container: frequency bytes are buffered files_per_chunk files at a time
// and flushed through codec::encode_chunk (which may fall back per chunk —
// e.g. delta declines fractional series), so memory stays
// O(files_per_chunk * days), not O(trace).
//
// finish() must be called for the file to be valid; a writer destroyed
// without it leaves a file that TraceReader::open rejects (zero header) —
// a crash can't masquerade as a complete trace.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "store/format.hpp"
#include "trace/trace.hpp"

namespace minicost::store {

/// Container options. The default (empty codec) writes the historical
/// version 1 layout byte-for-byte; naming a codec switches to version 2.
struct WriterOptions {
  /// "" -> v1. Otherwise a codec name ("raw", "delta", "zstd",
  /// "delta+zstd"); names this build cannot serve make the constructor
  /// throw with a message listing what is available.
  std::string codec;
  /// Files per v2 chunk (clamped-checked: must be in [1, kMaxFilesPerChunk]).
  /// 1024 files x 365 days is ~6 MiB of raw chunk buffer.
  std::uint32_t files_per_chunk = 1024;
};

class TraceWriter {
 public:
  /// Opens `path` for writing and reserves the header block. Throws
  /// std::runtime_error if the file cannot be created or days == 0, and
  /// std::invalid_argument for an unknown/unavailable codec or an
  /// out-of-range files_per_chunk.
  TraceWriter(const std::filesystem::path& path, std::size_t days);
  TraceWriter(const std::filesystem::path& path, std::size_t days,
              const WriterOptions& options);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one file's series (each exactly `days` long — throws
  /// std::invalid_argument otherwise) and records its table entry.
  void add_file(std::string_view name, double size_gb,
                std::span<const double> reads, std::span<const double> writes);

  /// Buffers one co-request group (members index files by their add_file
  /// order; series must be `days` long). Validated against the final file
  /// count in finish().
  void add_group(std::span<const trace::FileId> members,
                 std::span<const double> concurrent_reads);

  /// Writes the file table, name blob, group section, and the checksummed
  /// header, then closes. Throws std::runtime_error on I/O failure or if a
  /// buffered group references a file id that was never added.
  void finish();

  std::size_t days() const noexcept { return days_; }
  std::size_t file_count() const noexcept { return entries_.size(); }
  bool finished() const noexcept { return finished_; }

 private:
  void write_series(std::span<const double> series);
  void buffer_series(std::span<const double> series);
  /// Encodes and writes the buffered chunk (v2 only; no-op when empty).
  void flush_chunk();

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t days_;
  std::uint64_t stride_;
  std::vector<FileEntry> entries_;
  std::string names_;
  std::vector<std::byte> groups_;  ///< encoded group records
  std::uint64_t group_count_ = 0;
  std::uint32_t crc_freq_ = 0;
  std::vector<std::byte> pad_;  ///< reusable zero padding
  bool finished_ = false;
  // v2 state (unused when codec_id_ is absent == v1).
  bool v2_ = false;
  std::uint32_t codec_id_ = 0;       ///< requested codec (chunks may fall back)
  std::uint32_t files_per_chunk_ = 0;
  std::vector<std::byte> chunk_raw_;  ///< raw v1-layout bytes of the open chunk
  std::size_t chunk_files_ = 0;       ///< files buffered in chunk_raw_
  std::vector<ChunkEntry> chunks_;
  std::uint64_t freq_pos_ = 0;  ///< encoded bytes written so far
};

/// Packs an in-RAM trace into a .mct file (convenience over TraceWriter).
void pack_trace(const trace::RequestTrace& trace,
                const std::filesystem::path& path);
void pack_trace(const trace::RequestTrace& trace,
                const std::filesystem::path& path,
                const WriterOptions& options);

}  // namespace minicost::store
