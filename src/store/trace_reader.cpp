#include "store/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "codec/chunk_codec.hpp"
#include "obs/metrics.hpp"
#include "store/crc32.hpp"
#include "util/thread_pool.hpp"

namespace minicost::store {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw std::runtime_error(path.string() + ": " + what);
}

/// Upper bound on the horizon a v1 container may declare. Generous (two
/// million years of days) but finite, so series_stride arithmetic on a
/// corrupt header cannot overflow before the consistency checks run.
constexpr std::uint64_t kMaxDays = 1ULL << 30;

}  // namespace

TraceReader::TraceReader(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    fail(path, "truncated: smaller than the fixed header (" +
                   std::to_string(size) + " bytes)");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) fail(path, "mmap failed");
  base_ = static_cast<const std::byte*>(mapping);
  mapped_bytes_ = size;
  try {
    validate(path);
  } catch (...) {
    ::munmap(mapping, size);
    base_ = nullptr;
    mapped_bytes_ = 0;
    throw;
  }
  MC_OBS_COUNT("store.reader.bytes_mapped", size);
}

void TraceReader::validate(const std::filesystem::path& path) {
  std::memcpy(&header_, base_, sizeof header_);
  if (std::memcmp(header_.magic, kMagic, sizeof kMagic) != 0)
    fail(path, "not a .mct trace (bad magic)");
  if (header_.endian_tag != kEndianTag)
    fail(path, "endianness mismatch (file written on a foreign-endian host)");
  if (header_.version != kFormatVersion && header_.version != kFormatVersionV2)
    fail(path, "unsupported format version " +
                   std::to_string(header_.version) + " (this build reads " +
                   std::to_string(kFormatVersion) + " and " +
                   std::to_string(kFormatVersionV2) + ")");
  if (crc32(&header_, offsetof(Header, crc_header)) != header_.crc_header)
    fail(path, "header checksum mismatch (corrupt header)");
  if (header_.days == 0 || header_.days > kMaxDays)
    fail(path, "implausible day count " + std::to_string(header_.days));
  if (header_.total_bytes != mapped_bytes_)
    fail(path, "size mismatch: header says " +
                   std::to_string(header_.total_bytes) + " bytes, file has " +
                   std::to_string(mapped_bytes_) +
                   " (truncated or trailing garbage)");

  // Every section must lie inside the mapping before anything dereferences
  // an offset. Overflow-safe form: `offset + bytes <= mapped` would wrap for
  // a crafted header (e.g. names_bytes == 2^64 - names_offset slips a
  // zero-length "section" past an additive check, then the CRC pass reads
  // ~2^64 bytes). A valid header CRC proves integrity, not honesty.
  const auto section_in_file = [&](std::uint64_t offset,
                                   std::uint64_t bytes) noexcept {
    return offset <= mapped_bytes_ && bytes <= mapped_bytes_ - offset;
  };
  if (!section_in_file(header_.freq_offset, header_.freq_bytes) ||
      !section_in_file(header_.file_table_offset, header_.file_table_bytes) ||
      !section_in_file(header_.names_offset, header_.names_bytes) ||
      !section_in_file(header_.groups_offset, header_.groups_bytes))
    fail(path, "section extends past the end of the file");

  const std::uint64_t stride = series_stride_bytes(header_.days);
  if (header_.series_stride != stride)
    fail(path, "series stride " + std::to_string(header_.series_stride) +
                   " does not match the day count");
  if (header_.freq_offset != kHeaderBytes)
    fail(path, "inconsistent section layout in header");

  // The metadata sections start where the frequency section ends — directly
  // in v1, after the chunk table in v2. validate_v2 bounds file_count via
  // freq_raw_bytes (<= 2^57, so the file-table arithmetic below can't
  // overflow); v1 bounds it by the physical frequency bytes.
  std::uint64_t metadata_offset = header_.freq_offset + header_.freq_bytes;
  if (header_.version == kFormatVersionV2) {
    validate_v2(path);
    metadata_offset = ext_.chunk_table_offset + ext_.chunk_table_bytes;
  } else {
    if (header_.file_count > (mapped_bytes_ - kHeaderBytes) / (2 * stride))
      fail(path, "file count exceeds what the container could hold");
    if (header_.freq_bytes != header_.file_count * 2 * stride)
      fail(path, "inconsistent section layout in header");
  }
  if (header_.file_table_offset != metadata_offset ||
      header_.file_table_bytes != header_.file_count * sizeof(FileEntry) ||
      header_.names_offset !=
          header_.file_table_offset + header_.file_table_bytes ||
      header_.groups_offset !=
          round_up(header_.names_offset + header_.names_bytes, kGroupAlign) ||
      header_.total_bytes != header_.groups_offset + header_.groups_bytes)
    fail(path, "inconsistent section layout in header");

  // Metadata sections: checksum, then structure. The frequency section's
  // CRC is checked only by verify_checksums() — see the file comment.
  if (crc32(at(header_.file_table_offset), header_.file_table_bytes) !=
      header_.crc_file_table)
    fail(path, "file table checksum mismatch");
  if (crc32(at(header_.names_offset), header_.names_bytes) !=
      header_.crc_names)
    fail(path, "name blob checksum mismatch");
  if (crc32(at(header_.groups_offset), header_.groups_bytes) !=
      header_.crc_groups)
    fail(path, "group section checksum mismatch");

  file_table_ = reinterpret_cast<const FileEntry*>(at(header_.file_table_offset));
  for (std::uint64_t i = 0; i < header_.file_count; ++i) {
    const FileEntry& e = file_table_[i];
    // name_offset near 2^64 must not wrap the slice check into range.
    if (e.name_bytes > header_.names_bytes ||
        e.name_offset > header_.names_bytes - e.name_bytes || e.reserved != 0)
      fail(path, "file table entry " + std::to_string(i) + " is malformed");
  }

  // Bound the count before reserve(): a crafted group_count of 2^60 must be
  // a parse error, not an allocation attempt. Every record carries at least
  // its count + reserved words.
  if (header_.group_count > header_.groups_bytes / (2 * sizeof(std::uint32_t)))
    fail(path, "group count exceeds what the group section could hold");
  group_offsets_.reserve(header_.group_count);
  std::uint64_t pos = 0;
  for (std::uint64_t g = 0; g < header_.group_count; ++g) {
    group_offsets_.push_back(pos);
    if (pos + 2 * sizeof(std::uint32_t) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    std::uint32_t count = 0;
    std::memcpy(&count, at(header_.groups_offset + pos), sizeof count);
    if (count < 2)
      fail(path, "group " + std::to_string(g) + " has fewer than 2 members");
    pos += 2 * sizeof(std::uint32_t);
    if (pos + count * sizeof(trace::FileId) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    const auto* members =
        reinterpret_cast<const trace::FileId*>(at(header_.groups_offset + pos));
    for (std::uint32_t m = 0; m < count; ++m)
      if (members[m] >= header_.file_count)
        fail(path, "group " + std::to_string(g) + " references file id " +
                       std::to_string(members[m]) + " beyond the file count");
    pos = round_up(pos + count * sizeof(trace::FileId), kGroupAlign);
    if (pos + header_.days * sizeof(double) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    pos += header_.days * sizeof(double);
  }
  if (pos != header_.groups_bytes)
    fail(path, "group section has " +
                   std::to_string(header_.groups_bytes - pos) +
                   " trailing bytes");
}

void TraceReader::validate_v2(const std::filesystem::path& path) {
  std::memcpy(&ext_, base_ + kV2ExtOffset, sizeof ext_);
  if (crc32(&ext_, offsetof(HeaderV2Ext, crc_ext)) != ext_.crc_ext)
    fail(path, "v2 header extension checksum mismatch");
  if (codec::reserved_codec_name(ext_.codec_id).empty())
    fail(path, "unknown codec id " + std::to_string(ext_.codec_id) +
                   " in the header");
  if (ext_.files_per_chunk == 0 || ext_.files_per_chunk > kMaxFilesPerChunk)
    fail(path, "implausible files_per_chunk " +
                   std::to_string(ext_.files_per_chunk));
  // Divide instead of multiplying: freq_raw_bytes and file_count are both
  // attacker-controlled, and file_count * 2 * stride could wrap. A passing
  // check bounds file_count by 2^57 (stride >= 64), making the later
  // arithmetic on it overflow-free.
  const std::uint64_t per_file = 2 * header_.series_stride;
  if (ext_.freq_raw_bytes % per_file != 0 ||
      ext_.freq_raw_bytes / per_file != header_.file_count)
    fail(path, "decoded frequency size does not match the file count");
  const std::uint64_t expected_chunks =
      header_.file_count == 0
          ? 0
          : (header_.file_count + ext_.files_per_chunk - 1) /
                ext_.files_per_chunk;
  if (ext_.chunk_count != expected_chunks)
    fail(path, "chunk count does not match the file count");
  if (ext_.chunk_table_offset !=
          round_up(header_.freq_offset + header_.freq_bytes, kGroupAlign) ||
      ext_.chunk_table_bytes != ext_.chunk_count * sizeof(ChunkEntry))
    fail(path, "inconsistent chunk table layout in header");
  if (ext_.chunk_table_offset > mapped_bytes_ ||
      ext_.chunk_table_bytes > mapped_bytes_ - ext_.chunk_table_offset)
    fail(path, "chunk table extends past the end of the file");
  if (crc32(at(ext_.chunk_table_offset), ext_.chunk_table_bytes) !=
      ext_.crc_chunk_table)
    fail(path, "chunk table checksum mismatch");

  chunk_table_ =
      reinterpret_cast<const ChunkEntry*>(at(ext_.chunk_table_offset));
  std::uint64_t pos = 0;  // invariant: pos <= freq_bytes
  for (std::uint64_t c = 0; c < ext_.chunk_count; ++c) {
    const ChunkEntry& e = chunk_table_[c];
    const std::uint64_t files =
        std::min<std::uint64_t>(ext_.files_per_chunk,
                                header_.file_count - c * ext_.files_per_chunk);
    if (e.offset != pos)
      fail(path, "chunk " + std::to_string(c) +
                     " is not contiguous with its predecessor");
    if (e.raw_bytes != files * per_file)
      fail(path,
           "chunk " + std::to_string(c) + " declares the wrong decoded size");
    // encode_chunk guarantees encoded <= raw (growth falls back to raw);
    // enforcing it here bounds every decode-side buffer by the raw size.
    if (e.encoded_bytes == 0 || e.encoded_bytes > e.raw_bytes)
      fail(path, "chunk " + std::to_string(c) +
                     " has an implausible encoded size");
    if (e.encoded_bytes > header_.freq_bytes - pos)  // wrap-safe
      fail(path, "chunk " + std::to_string(c) +
                     " extends past the frequency section");
    if (codec::codec_by_id(e.codec_id) == nullptr) {
      const std::string_view reserved = codec::reserved_codec_name(e.codec_id);
      fail(path,
           reserved.empty()
               ? "unknown codec id " + std::to_string(e.codec_id) +
                     " in chunk " + std::to_string(c)
               : "codec '" + std::string(reserved) +
                     "' is not available in this build (MINICOST_WITH_ZSTD=OFF)");
    }
    pos += e.encoded_bytes;
  }
  if (pos != header_.freq_bytes)
    fail(path, "frequency section has " +
                   std::to_string(header_.freq_bytes - pos) +
                   " trailing bytes");
}

TraceReader::~TraceReader() {
  if (base_ != nullptr)
    ::munmap(const_cast<std::byte*>(base_), mapped_bytes_);
}

TraceReader::TraceReader(TraceReader&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      header_(other.header_),
      ext_(other.ext_),
      file_table_(std::exchange(other.file_table_, nullptr)),
      chunk_table_(std::exchange(other.chunk_table_, nullptr)),
      group_offsets_(std::move(other.group_offsets_)),
      decoded_freq_(std::move(other.decoded_freq_)),
      decoded_base_(std::exchange(other.decoded_base_, nullptr)) {}

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr)
      ::munmap(const_cast<std::byte*>(base_), mapped_bytes_);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    header_ = other.header_;
    ext_ = other.ext_;
    file_table_ = std::exchange(other.file_table_, nullptr);
    chunk_table_ = std::exchange(other.chunk_table_, nullptr);
    group_offsets_ = std::move(other.group_offsets_);
    decoded_freq_ = std::move(other.decoded_freq_);
    decoded_base_ = std::exchange(other.decoded_base_, nullptr);
  }
  return *this;
}

std::string_view TraceReader::name(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::name: file index out of range");
  const FileEntry& e = file_table_[file];
  return {reinterpret_cast<const char*>(at(header_.names_offset + e.name_offset)),
          e.name_bytes};
}

double TraceReader::size_gb(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::size_gb: file index out of range");
  return file_table_[file].size_gb;
}

std::size_t TraceReader::chunk_file_count(std::size_t index) const noexcept {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(ext_.files_per_chunk,
                              header_.file_count -
                                  static_cast<std::uint64_t>(index) *
                                      ext_.files_per_chunk));
}

void TraceReader::decode_chunk_into(std::size_t index,
                                    std::span<std::byte> raw_out) const {
  const ChunkEntry& e = chunk_table_[index];
  const std::span<const std::byte> encoded{at(header_.freq_offset + e.offset),
                                           e.encoded_bytes};
  MC_OBS_SCOPE("store.codec.decode");
  if (crc32(encoded.data(), encoded.size()) != e.crc)
    throw std::runtime_error("chunk " + std::to_string(index) +
                             " checksum mismatch (corrupt frequency data)");
  const codec::ChunkLayout layout{
      chunk_file_count(index), static_cast<std::size_t>(header_.days),
      static_cast<std::size_t>(header_.series_stride)};
  codec::decode_chunk(e.codec_id, layout, encoded, raw_out);
  MC_OBS_COUNT("store.codec.chunks_decoded", 1);
  MC_OBS_COUNT("store.codec.bytes_encoded", e.encoded_bytes);
  MC_OBS_COUNT("store.codec.bytes_decoded", e.raw_bytes);
}

const std::byte* TraceReader::decoded_freq_base() const {
  util::MutexLock lock(freq_mutex_);
  if (decoded_base_ == nullptr) {
    // Over-allocate so the first series can sit on a 64-byte boundary, the
    // same alignment the mapped v1 section provides.
    decoded_freq_.resize(static_cast<std::size_t>(ext_.freq_raw_bytes) +
                         kSeriesAlign);
    auto addr = reinterpret_cast<std::uintptr_t>(decoded_freq_.data());
    std::byte* aligned = decoded_freq_.data() +
                         (round_up(addr, kSeriesAlign) - addr);
    const std::uint64_t chunk_raw_stride =
        static_cast<std::uint64_t>(ext_.files_per_chunk) * 2 *
        header_.series_stride;
    for (std::size_t c = 0; c < ext_.chunk_count; ++c)
      decode_chunk_into(
          c, {aligned + static_cast<std::size_t>(c) * chunk_raw_stride,
              static_cast<std::size_t>(chunk_table_[c].raw_bytes)});
    decoded_base_ = aligned;
  }
  return decoded_base_;
}

std::span<const double> TraceReader::reads(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::reads: file index out of range");
  const std::byte* freq =
      is_v2() ? decoded_freq_base() : at(header_.freq_offset);
  const auto* series = reinterpret_cast<const double*>(
      freq + file * 2 * header_.series_stride);
  return {series, header_.days};
}

std::span<const double> TraceReader::writes(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::writes: file index out of range");
  const std::byte* freq =
      is_v2() ? decoded_freq_base() : at(header_.freq_offset);
  const auto* series = reinterpret_cast<const double*>(
      freq + file * 2 * header_.series_stride + header_.series_stride);
  return {series, header_.days};
}

TraceReader::GroupView TraceReader::group(std::size_t index) const {
  if (index >= group_offsets_.size())
    throw std::out_of_range("TraceReader::group: group index out of range");
  std::uint64_t pos = header_.groups_offset + group_offsets_[index];
  std::uint32_t count = 0;
  std::memcpy(&count, at(pos), sizeof count);
  pos += 2 * sizeof(std::uint32_t);
  const auto* members = reinterpret_cast<const trace::FileId*>(at(pos));
  pos = round_up(pos + count * sizeof(trace::FileId), kGroupAlign);
  const auto* series = reinterpret_cast<const double*>(at(pos));
  return {{members, count}, {series, header_.days}};
}

void TraceReader::verify_checksums() const {
  MC_OBS_SCOPE("store.reader.crc_scan");
  MC_OBS_COUNT("store.reader.crc_bytes", mapped_bytes_);
  const auto check = [&](std::uint64_t offset, std::uint64_t bytes,
                         std::uint32_t expected, const char* section) {
    if (crc32(at(offset), bytes) != expected)
      throw std::runtime_error(std::string(section) + " checksum mismatch");
  };
  if (crc32(&header_, offsetof(Header, crc_header)) != header_.crc_header)
    throw std::runtime_error("header checksum mismatch");
  check(header_.freq_offset, header_.freq_bytes, header_.crc_freq,
        "frequency section");
  check(header_.file_table_offset, header_.file_table_bytes,
        header_.crc_file_table, "file table");
  check(header_.names_offset, header_.names_bytes, header_.crc_names,
        "name blob");
  check(header_.groups_offset, header_.groups_bytes, header_.crc_groups,
        "group section");
  if (is_v2()) {
    if (crc32(&ext_, offsetof(HeaderV2Ext, crc_ext)) != ext_.crc_ext)
      throw std::runtime_error("v2 header extension checksum mismatch");
    check(ext_.chunk_table_offset, ext_.chunk_table_bytes,
          ext_.crc_chunk_table, "chunk table");
    // Per-chunk CRCs plus a full decode: a chunk whose encoded bytes
    // checksum correctly can still carry a malformed stream, and verify is
    // the one path expected to pay for finding out.
    std::vector<std::byte> scratch;
    for (std::size_t c = 0; c < ext_.chunk_count; ++c) {
      scratch.resize(static_cast<std::size_t>(chunk_table_[c].raw_bytes));
      decode_chunk_into(c, scratch);
    }
  }
}

void TraceReader::collect_groups(
    std::size_t first, std::size_t count,
    std::vector<trace::CoRequestGroup>& groups) const {
  for (std::size_t g = 0; g < group_offsets_.size(); ++g) {
    const GroupView view = group(g);
    bool inside = true;
    for (const trace::FileId m : view.members)
      if (m < first || m >= first + count) {
        inside = false;
        break;
      }
    if (!inside) continue;
    trace::CoRequestGroup copy;
    copy.members.reserve(view.members.size());
    for (const trace::FileId m : view.members)
      copy.members.push_back(static_cast<trace::FileId>(m - first));
    copy.concurrent_reads.assign(view.concurrent_reads.begin(),
                                 view.concurrent_reads.end());
    groups.push_back(std::move(copy));
  }
}

trace::RequestTrace TraceReader::materialize_shard(std::size_t first,
                                                   std::size_t count) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range("TraceReader::materialize_shard: bad file range");
  MC_OBS_COUNT("store.reader.files_materialized", count);
  std::vector<trace::FileRecord> files;
  files.reserve(count);
  const auto push_file = [&](std::size_t i, const std::byte* series_base) {
    trace::FileRecord f;
    f.name = std::string(name(i));
    f.size_gb = size_gb(i);
    const auto* r = reinterpret_cast<const double*>(series_base);
    const auto* w = reinterpret_cast<const double*>(series_base +
                                                    header_.series_stride);
    f.reads.assign(r, r + header_.days);
    f.writes.assign(w, w + header_.days);
    files.push_back(std::move(f));
  };
  if (!is_v2()) {
    for (std::size_t i = first; i < first + count; ++i)
      push_file(i, at(header_.freq_offset + i * 2 * header_.series_stride));
  } else if (count > 0) {
    // Decode only the chunks the range overlaps, into local scratch — no
    // shared state, so concurrent materializations (the shard prefetcher's
    // double-buffering) need no locking and resident memory stays
    // O(chunk + shard), not O(trace).
    std::vector<std::byte> scratch;
    const std::size_t last = first + count - 1;
    for (std::size_t c = first / ext_.files_per_chunk;
         c <= last / ext_.files_per_chunk; ++c) {
      const std::size_t chunk_first = c * ext_.files_per_chunk;
      const std::size_t in_chunk = chunk_file_count(c);
      scratch.resize(static_cast<std::size_t>(chunk_table_[c].raw_bytes));
      decode_chunk_into(c, scratch);
      const std::size_t lo = std::max(first, chunk_first);
      const std::size_t hi = std::min(first + count, chunk_first + in_chunk);
      for (std::size_t i = lo; i < hi; ++i)
        push_file(i, scratch.data() +
                         (i - chunk_first) * 2 * header_.series_stride);
    }
  }
  std::vector<trace::CoRequestGroup> groups;
  collect_groups(first, count, groups);
  return trace::RequestTrace(header_.days, std::move(files),
                             std::move(groups));
}

std::future<trace::RequestTrace> TraceReader::materialize_shard_async(
    std::size_t first, std::size_t count, util::ThreadPool* pool) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range(
        "TraceReader::materialize_shard_async: bad file range");
  util::ThreadPool& target = pool != nullptr ? *pool : util::ThreadPool::shared();
  return target.submit(
      [this, first, count] { return materialize_shard(first, count); });
}

trace::RequestTrace TraceReader::materialize() const {
  return materialize_shard(0, header_.file_count);
}

void TraceReader::release_frequency_range(std::size_t first,
                                          std::size_t count) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range(
        "TraceReader::release_frequency_range: bad file range");
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  std::uint64_t range_begin = first * 2 * header_.series_stride;
  std::uint64_t range_end = (first + count) * 2 * header_.series_stride;
  if (is_v2()) {
    // Map the file range to the encoded bytes of the chunks it fully or
    // partially covers; those are the pages a materialization touched.
    if (count == 0) return;
    const std::size_t cfirst = first / ext_.files_per_chunk;
    const std::size_t clast = (first + count - 1) / ext_.files_per_chunk;
    range_begin = chunk_table_[cfirst].offset;
    range_end = chunk_table_[clast].offset + chunk_table_[clast].encoded_bytes;
  }
  const std::uint64_t begin = round_up(header_.freq_offset + range_begin, page);
  const std::uint64_t end = (header_.freq_offset + range_end) / page * page;
  if (end <= begin) return;
  MC_OBS_COUNT("store.reader.pages_released", (end - begin) / page);
  // Advisory only: a failure (e.g. an unusual filesystem) costs memory
  // headroom, not correctness, so it is deliberately ignored.
  ::madvise(const_cast<std::byte*>(base_) + begin,
            static_cast<std::size_t>(end - begin), MADV_DONTNEED);
}

}  // namespace minicost::store
