#include "store/trace_reader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "store/crc32.hpp"
#include "util/thread_pool.hpp"

namespace minicost::store {
namespace {

[[noreturn]] void fail(const std::filesystem::path& path,
                       const std::string& what) {
  throw std::runtime_error(path.string() + ": " + what);
}

/// Upper bound on the horizon a v1 container may declare. Generous (two
/// million years of days) but finite, so series_stride arithmetic on a
/// corrupt header cannot overflow before the consistency checks run.
constexpr std::uint64_t kMaxDays = 1ULL << 30;

}  // namespace

TraceReader::TraceReader(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "cannot open");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail(path, "cannot stat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    fail(path, "truncated: smaller than the fixed header (" +
                   std::to_string(size) + " bytes)");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapping == MAP_FAILED) fail(path, "mmap failed");
  base_ = static_cast<const std::byte*>(mapping);
  mapped_bytes_ = size;
  try {
    validate(path);
  } catch (...) {
    ::munmap(mapping, size);
    base_ = nullptr;
    mapped_bytes_ = 0;
    throw;
  }
  MC_OBS_COUNT("store.reader.bytes_mapped", size);
}

void TraceReader::validate(const std::filesystem::path& path) {
  std::memcpy(&header_, base_, sizeof header_);
  if (std::memcmp(header_.magic, kMagic, sizeof kMagic) != 0)
    fail(path, "not a .mct trace (bad magic)");
  if (header_.endian_tag != kEndianTag)
    fail(path, "endianness mismatch (file written on a foreign-endian host)");
  if (header_.version != kFormatVersion)
    fail(path, "unsupported format version " +
                   std::to_string(header_.version) + " (this build reads " +
                   std::to_string(kFormatVersion) + ")");
  if (crc32(&header_, offsetof(Header, crc_header)) != header_.crc_header)
    fail(path, "header checksum mismatch (corrupt header)");
  if (header_.days == 0 || header_.days > kMaxDays)
    fail(path, "implausible day count " + std::to_string(header_.days));
  if (header_.total_bytes != mapped_bytes_)
    fail(path, "size mismatch: header says " +
                   std::to_string(header_.total_bytes) + " bytes, file has " +
                   std::to_string(mapped_bytes_) +
                   " (truncated or trailing garbage)");

  // Every section must lie inside the mapping before anything dereferences
  // an offset. Overflow-safe form: `offset + bytes <= mapped` would wrap for
  // a crafted header (e.g. names_bytes == 2^64 - names_offset slips a
  // zero-length "section" past an additive check, then the CRC pass reads
  // ~2^64 bytes). A valid header CRC proves integrity, not honesty.
  const auto section_in_file = [&](std::uint64_t offset,
                                   std::uint64_t bytes) noexcept {
    return offset <= mapped_bytes_ && bytes <= mapped_bytes_ - offset;
  };
  if (!section_in_file(header_.freq_offset, header_.freq_bytes) ||
      !section_in_file(header_.file_table_offset, header_.file_table_bytes) ||
      !section_in_file(header_.names_offset, header_.names_bytes) ||
      !section_in_file(header_.groups_offset, header_.groups_bytes))
    fail(path, "section extends past the end of the file");

  const std::uint64_t stride = series_stride_bytes(header_.days);
  if (header_.series_stride != stride)
    fail(path, "series stride " + std::to_string(header_.series_stride) +
                   " does not match the day count");
  if (header_.file_count > (mapped_bytes_ - kHeaderBytes) / (2 * stride))
    fail(path, "file count exceeds what the container could hold");
  if (header_.freq_offset != kHeaderBytes ||
      header_.freq_bytes != header_.file_count * 2 * stride ||
      header_.file_table_offset != header_.freq_offset + header_.freq_bytes ||
      header_.file_table_bytes != header_.file_count * sizeof(FileEntry) ||
      header_.names_offset !=
          header_.file_table_offset + header_.file_table_bytes ||
      header_.groups_offset !=
          round_up(header_.names_offset + header_.names_bytes, kGroupAlign) ||
      header_.total_bytes != header_.groups_offset + header_.groups_bytes)
    fail(path, "inconsistent section layout in header");

  // Metadata sections: checksum, then structure. The frequency section's
  // CRC is checked only by verify_checksums() — see the file comment.
  if (crc32(at(header_.file_table_offset), header_.file_table_bytes) !=
      header_.crc_file_table)
    fail(path, "file table checksum mismatch");
  if (crc32(at(header_.names_offset), header_.names_bytes) !=
      header_.crc_names)
    fail(path, "name blob checksum mismatch");
  if (crc32(at(header_.groups_offset), header_.groups_bytes) !=
      header_.crc_groups)
    fail(path, "group section checksum mismatch");

  file_table_ = reinterpret_cast<const FileEntry*>(at(header_.file_table_offset));
  for (std::uint64_t i = 0; i < header_.file_count; ++i) {
    const FileEntry& e = file_table_[i];
    // name_offset near 2^64 must not wrap the slice check into range.
    if (e.name_bytes > header_.names_bytes ||
        e.name_offset > header_.names_bytes - e.name_bytes || e.reserved != 0)
      fail(path, "file table entry " + std::to_string(i) + " is malformed");
  }

  // Bound the count before reserve(): a crafted group_count of 2^60 must be
  // a parse error, not an allocation attempt. Every record carries at least
  // its count + reserved words.
  if (header_.group_count > header_.groups_bytes / (2 * sizeof(std::uint32_t)))
    fail(path, "group count exceeds what the group section could hold");
  group_offsets_.reserve(header_.group_count);
  std::uint64_t pos = 0;
  for (std::uint64_t g = 0; g < header_.group_count; ++g) {
    group_offsets_.push_back(pos);
    if (pos + 2 * sizeof(std::uint32_t) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    std::uint32_t count = 0;
    std::memcpy(&count, at(header_.groups_offset + pos), sizeof count);
    if (count < 2)
      fail(path, "group " + std::to_string(g) + " has fewer than 2 members");
    pos += 2 * sizeof(std::uint32_t);
    if (pos + count * sizeof(trace::FileId) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    const auto* members =
        reinterpret_cast<const trace::FileId*>(at(header_.groups_offset + pos));
    for (std::uint32_t m = 0; m < count; ++m)
      if (members[m] >= header_.file_count)
        fail(path, "group " + std::to_string(g) + " references file id " +
                       std::to_string(members[m]) + " beyond the file count");
    pos = round_up(pos + count * sizeof(trace::FileId), kGroupAlign);
    if (pos + header_.days * sizeof(double) > header_.groups_bytes)
      fail(path, "group section truncated at group " + std::to_string(g));
    pos += header_.days * sizeof(double);
  }
  if (pos != header_.groups_bytes)
    fail(path, "group section has " +
                   std::to_string(header_.groups_bytes - pos) +
                   " trailing bytes");
}

TraceReader::~TraceReader() {
  if (base_ != nullptr)
    ::munmap(const_cast<std::byte*>(base_), mapped_bytes_);
}

TraceReader::TraceReader(TraceReader&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      mapped_bytes_(std::exchange(other.mapped_bytes_, 0)),
      header_(other.header_),
      file_table_(std::exchange(other.file_table_, nullptr)),
      group_offsets_(std::move(other.group_offsets_)) {}

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr)
      ::munmap(const_cast<std::byte*>(base_), mapped_bytes_);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    header_ = other.header_;
    file_table_ = std::exchange(other.file_table_, nullptr);
    group_offsets_ = std::move(other.group_offsets_);
  }
  return *this;
}

std::string_view TraceReader::name(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::name: file index out of range");
  const FileEntry& e = file_table_[file];
  return {reinterpret_cast<const char*>(at(header_.names_offset + e.name_offset)),
          e.name_bytes};
}

double TraceReader::size_gb(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::size_gb: file index out of range");
  return file_table_[file].size_gb;
}

std::span<const double> TraceReader::reads(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::reads: file index out of range");
  const auto* series = reinterpret_cast<const double*>(
      at(header_.freq_offset + file * 2 * header_.series_stride));
  return {series, header_.days};
}

std::span<const double> TraceReader::writes(std::size_t file) const {
  if (file >= header_.file_count)
    throw std::out_of_range("TraceReader::writes: file index out of range");
  const auto* series = reinterpret_cast<const double*>(
      at(header_.freq_offset + file * 2 * header_.series_stride +
         header_.series_stride));
  return {series, header_.days};
}

TraceReader::GroupView TraceReader::group(std::size_t index) const {
  if (index >= group_offsets_.size())
    throw std::out_of_range("TraceReader::group: group index out of range");
  std::uint64_t pos = header_.groups_offset + group_offsets_[index];
  std::uint32_t count = 0;
  std::memcpy(&count, at(pos), sizeof count);
  pos += 2 * sizeof(std::uint32_t);
  const auto* members = reinterpret_cast<const trace::FileId*>(at(pos));
  pos = round_up(pos + count * sizeof(trace::FileId), kGroupAlign);
  const auto* series = reinterpret_cast<const double*>(at(pos));
  return {{members, count}, {series, header_.days}};
}

void TraceReader::verify_checksums() const {
  MC_OBS_SCOPE("store.reader.crc_scan");
  MC_OBS_COUNT("store.reader.crc_bytes", mapped_bytes_);
  const auto check = [&](std::uint64_t offset, std::uint64_t bytes,
                         std::uint32_t expected, const char* section) {
    if (crc32(at(offset), bytes) != expected)
      throw std::runtime_error(std::string(section) + " checksum mismatch");
  };
  if (crc32(&header_, offsetof(Header, crc_header)) != header_.crc_header)
    throw std::runtime_error("header checksum mismatch");
  check(header_.freq_offset, header_.freq_bytes, header_.crc_freq,
        "frequency section");
  check(header_.file_table_offset, header_.file_table_bytes,
        header_.crc_file_table, "file table");
  check(header_.names_offset, header_.names_bytes, header_.crc_names,
        "name blob");
  check(header_.groups_offset, header_.groups_bytes, header_.crc_groups,
        "group section");
}

trace::RequestTrace TraceReader::materialize_shard(std::size_t first,
                                                   std::size_t count) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range("TraceReader::materialize_shard: bad file range");
  MC_OBS_COUNT("store.reader.files_materialized", count);
  std::vector<trace::FileRecord> files;
  files.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    trace::FileRecord f;
    f.name = std::string(name(i));
    f.size_gb = size_gb(i);
    const auto r = reads(i);
    const auto w = writes(i);
    f.reads.assign(r.begin(), r.end());
    f.writes.assign(w.begin(), w.end());
    files.push_back(std::move(f));
  }
  std::vector<trace::CoRequestGroup> groups;
  for (std::size_t g = 0; g < group_offsets_.size(); ++g) {
    const GroupView view = group(g);
    bool inside = true;
    for (const trace::FileId m : view.members)
      if (m < first || m >= first + count) {
        inside = false;
        break;
      }
    if (!inside) continue;
    trace::CoRequestGroup copy;
    copy.members.reserve(view.members.size());
    for (const trace::FileId m : view.members)
      copy.members.push_back(static_cast<trace::FileId>(m - first));
    copy.concurrent_reads.assign(view.concurrent_reads.begin(),
                                 view.concurrent_reads.end());
    groups.push_back(std::move(copy));
  }
  return trace::RequestTrace(header_.days, std::move(files),
                             std::move(groups));
}

std::future<trace::RequestTrace> TraceReader::materialize_shard_async(
    std::size_t first, std::size_t count, util::ThreadPool* pool) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range(
        "TraceReader::materialize_shard_async: bad file range");
  util::ThreadPool& target = pool != nullptr ? *pool : util::ThreadPool::shared();
  return target.submit(
      [this, first, count] { return materialize_shard(first, count); });
}

trace::RequestTrace TraceReader::materialize() const {
  return materialize_shard(0, header_.file_count);
}

void TraceReader::release_frequency_range(std::size_t first,
                                          std::size_t count) const {
  if (count > header_.file_count || first > header_.file_count - count)
    throw std::out_of_range(
        "TraceReader::release_frequency_range: bad file range");
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t begin =
      round_up(header_.freq_offset + first * 2 * header_.series_stride, page);
  const std::uint64_t end = (header_.freq_offset +
                             (first + count) * 2 * header_.series_stride) /
                            page * page;
  if (end <= begin) return;
  MC_OBS_COUNT("store.reader.pages_released", (end - begin) / page);
  // Advisory only: a failure (e.g. an unusual filesystem) costs memory
  // headroom, not correctness, so it is deliberately ignored.
  ::madvise(const_cast<std::byte*>(base_) + begin,
            static_cast<std::size_t>(end - begin), MADV_DONTNEED);
}

}  // namespace minicost::store
