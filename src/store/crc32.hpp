#pragma once
// CRC32 (IEEE 802.3 / zlib polynomial) for the .mct section checksums.
// Table-driven, incremental: feed sections in pieces by passing the previous
// return value back in as `seed` (seed 0 == fresh checksum, zlib-compatible).

#include <cstddef>
#include <cstdint>

namespace minicost::store {

std::uint32_t crc32(const void* data, std::size_t len,
                    std::uint32_t seed = 0) noexcept;

}  // namespace minicost::store
