#pragma once
// The `.mct` on-disk trace container (MiniCost Trace, versions 1 and 2): a
// versioned, checksummed, *columnar* binary format sized for
// Wikipedia-scale workloads (millions of files x a multi-month horizon),
// where the CSV container of trace/trace_io.hpp stops being practical.
//
// Version 1 layout (all integers little-endian, offsets from file start):
//
//   [header]      4096 bytes, struct Header below, zero-padded
//   [frequency]   file-major series blocks: for file i, its reads series
//                 then its writes series, each occupying `series_stride`
//                 bytes (days * 8 rounded up to 64). Every series therefore
//                 starts 64-byte aligned — the alignment the PR 1 SIMD batch
//                 kernels load with — and maps directly as
//                 std::span<const double> with zero copies.
//   [file table]  file_count x FileEntry (name slice + size_gb)
//   [name blob]   concatenated UTF-8 names, sliced by the file table
//   [group section] co-request groups, 8-byte aligned records:
//                     u32 member_count, u32 reserved(0),
//                     u32 members[member_count], pad to 8,
//                     f64 concurrent_reads[days]
//
// Version 2 keeps the Header struct (version == 2) and adds a HeaderV2Ext
// at fixed offset kV2ExtOffset inside the same 4096-byte block. The
// frequency section becomes a sequence of contiguous *encoded chunks*
// (src/codec/chunk_codec.hpp): chunk i holds the v1-layout frequency bytes
// of files [i*files_per_chunk, min((i+1)*files_per_chunk, file_count)),
// compressed by the per-chunk codec recorded in its ChunkEntry. A chunk
// table (chunk_count x ChunkEntry, at round_up(freq end, kGroupAlign))
// sits between the frequency section and the file table; every other
// section is laid out exactly as in v1. `freq_bytes` is the *encoded*
// size; the decoded size lives in HeaderV2Ext::freq_raw_bytes. Decoding a
// chunk reproduces the v1 64-byte-aligned file-major bytes exactly, so
// SIMD kernels and billing see identical data either way.
//
// Integrity: each section carries a CRC32 in the header, and the header
// itself is CRC'd over every byte that precedes its own checksum field.
// In v2 every chunk additionally carries a CRC32 of its encoded bytes,
// verified on every decode. Opening a file verifies the header and all
// *metadata* sections (in v2: also the ext and the chunk table); the
// frequency section's CRC — a full scan of what can be many GB — is checked
// by TraceReader::verify_checksums() (`tracepack verify`), so a plain open
// never pages in the bulk data. See DESIGN.md §9/§13 for the full field
// tables and the versioning/compat rules.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace minicost::store {

inline constexpr char kMagic[8] = {'M', 'C', 'T', 'R', 'A', 'C', 'E', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kFormatVersionV2 = 2;
/// Fixed offset of HeaderV2Ext inside the 4096-byte header block. Placed
/// well past sizeof(Header) so v1 field additions never collide, and at a
/// fixed offset (not sizeof(Header)) so struct padding can't shift it.
inline constexpr std::size_t kV2ExtOffset = 256;
/// Ceiling on HeaderV2Ext::files_per_chunk. Bounds the raw size of any
/// single chunk — and therefore every decode scratch allocation — to
/// files_per_chunk * 2 * series_stride regardless of what a hostile header
/// claims.
inline constexpr std::uint32_t kMaxFilesPerChunk = 1u << 20;
/// Written as 0x01020304 by the native-endian writer; a reader seeing the
/// byte-swapped value is on a foreign-endian host and must reject the file.
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::size_t kHeaderBytes = 4096;
/// Series blocks are padded to this boundary (the SIMD kernel alignment).
inline constexpr std::size_t kSeriesAlign = 64;
/// Group records are padded so their f64 series stays naturally aligned.
inline constexpr std::size_t kGroupAlign = 8;

constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t a) noexcept {
  return (v + a - 1) / a * a;
}

/// One row of the file table.
struct FileEntry {
  std::uint64_t name_offset = 0;  ///< into the name blob
  std::uint32_t name_bytes = 0;
  std::uint32_t reserved = 0;     ///< must be zero in version 1
  double size_gb = 0.0;
};
static_assert(sizeof(FileEntry) == 24 && std::is_trivially_copyable_v<FileEntry>);

/// The fixed header at offset 0. Fields through `crc_header` are meaningful;
/// the remainder of the 4096-byte block is zero padding (reserved — a future
/// version may claim it, which is why version 1 readers require it zeroed).
struct Header {
  char magic[8] = {};            ///< kMagic
  std::uint32_t endian_tag = 0;  ///< kEndianTag
  std::uint32_t version = 0;     ///< kFormatVersion
  std::uint64_t days = 0;
  std::uint64_t file_count = 0;
  std::uint64_t group_count = 0;
  std::uint64_t series_stride = 0;  ///< bytes per series block
  std::uint64_t freq_offset = 0;
  std::uint64_t freq_bytes = 0;
  std::uint64_t file_table_offset = 0;
  std::uint64_t file_table_bytes = 0;
  std::uint64_t names_offset = 0;
  std::uint64_t names_bytes = 0;
  std::uint64_t groups_offset = 0;
  std::uint64_t groups_bytes = 0;
  std::uint64_t total_bytes = 0;  ///< whole-file size; truncation detector
  std::uint32_t crc_freq = 0;
  std::uint32_t crc_file_table = 0;
  std::uint32_t crc_names = 0;
  std::uint32_t crc_groups = 0;
  std::uint32_t crc_header = 0;  ///< CRC32 of the bytes preceding this field
};
static_assert(sizeof(Header) <= kHeaderBytes &&
              std::is_trivially_copyable_v<Header>);

/// One row of the v2 chunk table. Entries are ordered and contiguous:
/// entry 0 starts at offset 0 (relative to freq_offset) and each entry
/// starts where the previous one ends, so `offset`/`encoded_bytes` are
/// fully determined — the reader re-derives and cross-checks them.
struct ChunkEntry {
  std::uint64_t offset = 0;         ///< of the encoded bytes, from freq_offset
  std::uint64_t encoded_bytes = 0;  ///< on-disk size (<= raw_bytes, always)
  std::uint64_t raw_bytes = 0;      ///< decoded size: files_in_chunk * 2 * stride
  std::uint32_t codec_id = 0;       ///< codec::kCodec* id that encoded this chunk
  std::uint32_t crc = 0;            ///< CRC32 of the encoded bytes
};
static_assert(sizeof(ChunkEntry) == 32 &&
              std::is_trivially_copyable_v<ChunkEntry>);

/// The v2 header extension at kV2ExtOffset. CRC'd independently of the v1
/// Header (crc_ext covers every preceding ext byte) so v1 tooling that
/// rewrites Header fields cannot silently invalidate v2 metadata.
struct HeaderV2Ext {
  std::uint32_t codec_id = 0;        ///< codec the writer was asked for
  std::uint32_t files_per_chunk = 0; ///< > 0, <= kMaxFilesPerChunk
  std::uint64_t chunk_count = 0;     ///< ceil(file_count / files_per_chunk)
  std::uint64_t chunk_table_offset = 0;
  std::uint64_t chunk_table_bytes = 0;  ///< chunk_count * sizeof(ChunkEntry)
  std::uint64_t freq_raw_bytes = 0;     ///< decoded size: file_count * 2 * stride
  std::uint32_t crc_chunk_table = 0;
  std::uint32_t crc_ext = 0;  ///< CRC32 of the ext bytes preceding this field
};
static_assert(sizeof(HeaderV2Ext) == 48 &&
              std::is_trivially_copyable_v<HeaderV2Ext>);
static_assert(kV2ExtOffset >= sizeof(Header) &&
              kV2ExtOffset + sizeof(HeaderV2Ext) <= kHeaderBytes);

/// Bytes one (reads or writes) series block occupies on disk.
constexpr std::uint64_t series_stride_bytes(std::uint64_t days) noexcept {
  return round_up(days * sizeof(double), kSeriesAlign);
}

}  // namespace minicost::store
