#pragma once
// The `.mct` on-disk trace container (MiniCost Trace, version 1): a
// versioned, checksummed, *columnar* binary format sized for
// Wikipedia-scale workloads (millions of files x a multi-month horizon),
// where the CSV container of trace/trace_io.hpp stops being practical.
//
// Layout (all integers little-endian, offsets from the start of the file):
//
//   [header]      4096 bytes, struct Header below, zero-padded
//   [frequency]   file-major series blocks: for file i, its reads series
//                 then its writes series, each occupying `series_stride`
//                 bytes (days * 8 rounded up to 64). Every series therefore
//                 starts 64-byte aligned — the alignment the PR 1 SIMD batch
//                 kernels load with — and maps directly as
//                 std::span<const double> with zero copies.
//   [file table]  file_count x FileEntry (name slice + size_gb)
//   [name blob]   concatenated UTF-8 names, sliced by the file table
//   [group section] co-request groups, 8-byte aligned records:
//                     u32 member_count, u32 reserved(0),
//                     u32 members[member_count], pad to 8,
//                     f64 concurrent_reads[days]
//
// Integrity: each section carries a CRC32 in the header, and the header
// itself is CRC'd over every byte that precedes its own checksum field.
// Opening a file verifies the header and all *metadata* sections; the
// frequency section's CRC — a full scan of what can be many GB — is checked
// by TraceReader::verify_checksums() (`tracepack verify`), so a plain open
// never pages in the bulk data. See DESIGN.md §9 for the full field table
// and the versioning/compat rules.

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace minicost::store {

inline constexpr char kMagic[8] = {'M', 'C', 'T', 'R', 'A', 'C', 'E', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as 0x01020304 by the native-endian writer; a reader seeing the
/// byte-swapped value is on a foreign-endian host and must reject the file.
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::size_t kHeaderBytes = 4096;
/// Series blocks are padded to this boundary (the SIMD kernel alignment).
inline constexpr std::size_t kSeriesAlign = 64;
/// Group records are padded so their f64 series stays naturally aligned.
inline constexpr std::size_t kGroupAlign = 8;

constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t a) noexcept {
  return (v + a - 1) / a * a;
}

/// One row of the file table.
struct FileEntry {
  std::uint64_t name_offset = 0;  ///< into the name blob
  std::uint32_t name_bytes = 0;
  std::uint32_t reserved = 0;     ///< must be zero in version 1
  double size_gb = 0.0;
};
static_assert(sizeof(FileEntry) == 24 && std::is_trivially_copyable_v<FileEntry>);

/// The fixed header at offset 0. Fields through `crc_header` are meaningful;
/// the remainder of the 4096-byte block is zero padding (reserved — a future
/// version may claim it, which is why version 1 readers require it zeroed).
struct Header {
  char magic[8] = {};            ///< kMagic
  std::uint32_t endian_tag = 0;  ///< kEndianTag
  std::uint32_t version = 0;     ///< kFormatVersion
  std::uint64_t days = 0;
  std::uint64_t file_count = 0;
  std::uint64_t group_count = 0;
  std::uint64_t series_stride = 0;  ///< bytes per series block
  std::uint64_t freq_offset = 0;
  std::uint64_t freq_bytes = 0;
  std::uint64_t file_table_offset = 0;
  std::uint64_t file_table_bytes = 0;
  std::uint64_t names_offset = 0;
  std::uint64_t names_bytes = 0;
  std::uint64_t groups_offset = 0;
  std::uint64_t groups_bytes = 0;
  std::uint64_t total_bytes = 0;  ///< whole-file size; truncation detector
  std::uint32_t crc_freq = 0;
  std::uint32_t crc_file_table = 0;
  std::uint32_t crc_names = 0;
  std::uint32_t crc_groups = 0;
  std::uint32_t crc_header = 0;  ///< CRC32 of the bytes preceding this field
};
static_assert(sizeof(Header) <= kHeaderBytes &&
              std::is_trivially_copyable_v<Header>);

/// Bytes one (reads or writes) series block occupies on disk.
constexpr std::uint64_t series_stride_bytes(std::uint64_t days) noexcept {
  return round_up(days * sizeof(double), kSeriesAlign);
}

}  // namespace minicost::store
