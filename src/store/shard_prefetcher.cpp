#include "store/shard_prefetcher.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace minicost::store {

ShardPrefetcher::ShardPrefetcher(const TraceReader& reader,
                                 std::vector<Range> ranges,
                                 util::ThreadPool* pool, std::size_t depth)
    : reader_(reader),
      ranges_(std::move(ranges)),
      pool_(pool),
      depth_(depth == 0 ? 1 : depth) {
  for (const Range& range : ranges_)
    if (range.first + range.count > reader_.file_count())
      throw std::out_of_range("ShardPrefetcher: range exceeds the store");
}

void ShardPrefetcher::fill() {
  // Keep the shard about to be consumed plus up to depth_ readahead shards
  // in flight; materialize_shard_async validated ranges already.
  while (issued_ < ranges_.size() && inflight_.size() < depth_ + 1) {
    inflight_.push_back(reader_.materialize_shard_async(
        ranges_[issued_].first, ranges_[issued_].count, pool_));
    ++issued_;
    MC_OBS_COUNT("store.prefetcher.shards_issued", 1);
  }
}

ShardPrefetcher::Shard ShardPrefetcher::next() {
  if (done()) throw std::logic_error("ShardPrefetcher::next: exhausted");
  fill();
  std::future<trace::RequestTrace> front = std::move(inflight_.front());
  inflight_.pop_front();
  // Top back up before blocking so the readahead shard materializes while
  // the caller is still waiting on (and then planning) this one.
  fill();
  Shard shard;
  shard.index = consumed_;
  shard.range = ranges_[consumed_];
  {
    MC_OBS_SCOPE("store.prefetcher.wait");
    shard.trace = front.get();
  }
  ++consumed_;
  return shard;
}

}  // namespace minicost::store
