#pragma once
// Double-buffered shard readahead over a TraceReader.
//
// The pipelined planning driver (core/plan_driver.hpp) wants shard N+1's
// RequestTrace materializing on the thread pool while shard N is being
// decided and billed. ShardPrefetcher owns exactly that overlap: give it
// the ordered list of shard ranges, and each next() call returns the next
// materialized shard while keeping up to `depth` further shards in flight
// (depth 1 — the default — is the classic double buffer: one shard being
// consumed, one being readied).
//
// Determinism: materialization copies mapped series bytes verbatim
// (TraceReader::materialize_shard), so WHERE it runs cannot change a single
// bit of the shard's contents; shards are handed back strictly in range
// order. The prefetcher therefore composes with the DESIGN.md §9 guarantee:
// a pipelined run's per-shard inputs are bit-equal to a serial run's.
//
// Threading: next() must be called from a driver thread, never from a task
// running on the same pool (a blocked std::future::get() does not help
// drain the queue). Ranges are non-overlapping by construction in every
// in-tree caller, which keeps release_frequency_range() on consumed shards
// disjoint from in-flight materializations.

#include <cstddef>
#include <deque>
#include <future>
#include <vector>

#include "store/trace_reader.hpp"
#include "trace/trace.hpp"

namespace minicost::store {

class ShardPrefetcher {
 public:
  struct Range {
    std::size_t first = 0;  ///< first file id of the shard
    std::size_t count = 0;  ///< files in the shard
  };
  struct Shard {
    std::size_t index = 0;  ///< position in the construction-order range list
    Range range;
    trace::RequestTrace trace;
  };

  /// Queues nothing yet; the first next() primes the pipeline. `ranges` are
  /// consumed in order. `pool` nullptr = the process-shared pool. `depth` is
  /// how many shards beyond the one being returned may be in flight
  /// (clamped to >= 1). Throws std::out_of_range up front if any range
  /// exceeds the reader's file count.
  ShardPrefetcher(const TraceReader& reader, std::vector<Range> ranges,
                  util::ThreadPool* pool = nullptr, std::size_t depth = 1);

  std::size_t size() const noexcept { return ranges_.size(); }
  bool done() const noexcept { return consumed_ == ranges_.size(); }

  /// Blocks until the next shard in order is materialized, tops the
  /// pipeline back up to `depth` in-flight shards, and returns it. Throws
  /// std::logic_error when already done(); rethrows any exception the
  /// materialization task raised.
  Shard next();

 private:
  void fill();

  const TraceReader& reader_;
  std::vector<Range> ranges_;
  util::ThreadPool* pool_;
  std::size_t depth_;
  std::size_t issued_ = 0;    ///< next range index to queue
  std::size_t consumed_ = 0;  ///< next range index to hand out
  std::deque<std::future<trace::RequestTrace>> inflight_;
};

}  // namespace minicost::store
