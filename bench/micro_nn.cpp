// Microbenchmarks for the neural-network substrate: forward/backward of the
// paper's actor architecture at several widths, plus optimizer steps.

#include <benchmark/benchmark.h>

#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace {

using namespace minicost;

nn::Network make_net(std::size_t width) {
  util::Rng rng(1);
  return nn::build_trunk(14, 14, width, 4, width, 3, rng);
}

std::vector<double> make_input() {
  util::Rng rng(2);
  std::vector<double> input(28);
  for (double& x : input) x = rng.uniform(0.0, 1.0);
  return input;
}

void BM_NN_Forward(benchmark::State& state) {
  nn::Network net = make_net(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> input = make_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(input));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NN_Forward)->Arg(8)->Arg(32)->Arg(128);

void BM_NN_ForwardBackward(benchmark::State& state) {
  nn::Network net = make_net(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> input = make_input();
  const std::vector<double> grad{1.0, -0.5, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(input));
    benchmark::DoNotOptimize(net.backward(grad));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NN_ForwardBackward)->Arg(8)->Arg(32)->Arg(128);

void BM_NN_SnapshotLoad(benchmark::State& state) {
  nn::Network net = make_net(32);
  for (auto _ : state) {
    auto params = net.snapshot_parameters();
    net.load_parameters(params);
    benchmark::DoNotOptimize(params);
  }
}
BENCHMARK(BM_NN_SnapshotLoad);

void BM_NN_OptimizerStep(benchmark::State& state) {
  nn::Network net = make_net(32);
  nn::Sgd opt(0.005, 0.9);
  std::vector<double> params = net.snapshot_parameters();
  std::vector<double> grads(params.size(), 0.001);
  for (auto _ : state) {
    opt.step(params, grads);
    benchmark::DoNotOptimize(params.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(params.size()));
}
BENCHMARK(BM_NN_OptimizerStep);

}  // namespace
