// Ablation — planning horizon (the Greedy-vs-MiniCost mechanism, paper
// Sec. 3.2): sweeps the discount factor γ (the agent's effective look-ahead)
// and compares against the 1-day horizons of Greedy (yesterday-informed)
// and the clairvoyant greedy oracle. γ=0 is the RL degenerate case of a
// purely myopic learner.

#include <iostream>

#include "common.hpp"
#include "core/greedy.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"

int main() {
  using namespace minicost;
  std::cout << "ablation_horizon: look-ahead depth (gamma) vs greedy\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_FILES", 600));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);
  const auto episodes =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_EPISODES", 35000));

  util::Table table({"policy / gamma", "eval cost", "vs optimal"});

  // Greedy reference points.
  {
    core::PlanOptions options;
    options.start_day = tr.days() - 14;
    options.initial_tiers =
        core::static_initial_tiers(tr, prices, options.start_day);
    core::GreedyPolicy greedy;
    core::ClairvoyantGreedyPolicy oracle;
    for (auto& [name, policy] :
         std::vector<std::pair<std::string, core::TieringPolicy*>>{
             {"Greedy (yesterday)", &greedy},
             {"Greedy 1-day oracle", &oracle}}) {
      const double cost = core::run_policy(tr, prices, *policy, options)
                              .report.grand_total()
                              .total();
      table.add_row({name, util::format_money(cost),
                     util::format_double(cost / eval.optimal_cost(), 4)});
    }
  }

  for (double gamma : {0.0, 0.5, 0.9, 0.97}) {
    rl::A3CConfig config;
    config.gamma = gamma;
    rl::A3CAgent agent(config, workload.seed);
    rl::TrainOptions options;
    options.episodes = episodes;
    options.report_every = episodes;
    agent.train(tr, prices, options);
    const double cost = eval.cost(agent);
    table.add_row({"MiniCost gamma=" + util::format_double(gamma, 2),
                   util::format_money(cost),
                   util::format_double(cost / eval.optimal_cost(), 4)});
    std::cout << "  gamma=" << gamma << ": "
              << util::format_double(cost / eval.optimal_cost(), 4)
              << "x optimal\n";
  }
  benchx::emit("ablation_horizon", "Planning-horizon ablation", table);
  benchx::expectation(
      "a myopic agent (gamma=0) cannot amortize tier-change costs and lands "
      "near or above Greedy; moderate discounting (~0.9) performs best — "
      "the paper's argument for long-term planning over per-day greed");
  return 0;
}
