// Planning throughput: the scalar decide() loop vs the batched decide_day()
// pipeline, per policy, on a wide synthetic trace. This is the number the
// batched-planning refactor is accountable for — one day of tier decisions
// for every file, as files/second.
//
// Output is machine-readable JSON on stdout (one object), e.g.
//   {"bench":"micro_batch_plan","files":50000, ...,
//    "results":[{"policy":"MiniCost","scalar_files_per_sec":...,
//                "batched_files_per_sec":...,"speedup":...}, ...]}
//
// MINICOST_SCALE overrides the file count (default 50000); MINICOST_SEED
// the trace/agent seed.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/planner.hpp"
#include "core/policy.hpp"
#include "core/rl_policy.hpp"
#include "pricing/policy.hpp"
#include "rl/a3c.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace minicost;

struct Measurement {
  std::string policy;
  double scalar_seconds = 0.0;
  double batched_seconds = 0.0;
};

// Best-of-`repeats` timing of one full-width planning day down each path.
Measurement measure(core::TieringPolicy& policy, const core::PlanContext& context,
                    std::size_t day,
                    const std::vector<pricing::StorageTier>& current,
                    int repeats = 3) {
  const std::size_t n = context.trace.file_count();
  Measurement m;
  m.policy = policy.name();
  m.scalar_seconds = 1e300;
  m.batched_seconds = 1e300;
  policy.prepare(context);
  std::vector<pricing::StorageTier> plan(n);
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    for (trace::FileId f = 0; f < n; ++f)
      plan[f] = policy.decide(context, f, day, current[f]);
    m.scalar_seconds = std::min(m.scalar_seconds, watch.seconds());
  }
  for (int r = 0; r < repeats; ++r) {
    util::Stopwatch watch;
    policy.decide_day(context, day, current, plan);
    m.batched_seconds = std::min(m.batched_seconds, watch.seconds());
  }
  return m;
}

}  // namespace

int main() {
  const auto files = static_cast<std::size_t>(util::bench_scale(50000));
  const std::size_t days = 30;
  const std::size_t day = 20;  // past the 14-day feature warmup

  trace::SyntheticConfig trace_config;
  trace_config.file_count = files;
  trace_config.days = days;
  trace_config.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(trace_config);
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();

  const std::vector<pricing::StorageTier> initial =
      core::static_initial_tiers(tr, azure, 14);
  const core::PlanContext context{tr, azure, 14, days, initial};

  rl::A3CConfig agent_config;
  agent_config.workers = 1;
  rl::A3CAgent agent(agent_config, util::bench_seed());

  std::vector<Measurement> results;
  {
    auto hot = core::make_hot_policy();
    results.push_back(measure(*hot, context, day, initial));
  }
  {
    core::GreedyPolicy greedy;
    results.push_back(measure(greedy, context, day, initial));
  }
  {
    core::RlPolicy minicost(agent);
    results.push_back(measure(minicost, context, day, initial));
  }

  std::printf("{\"bench\":\"micro_batch_plan\",\"files\":%zu,\"day\":%zu,"
              "\"pool_threads\":%zu,\"results\":[",
              files, day, util::ThreadPool::shared().size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    const double scalar_fps = static_cast<double>(files) / m.scalar_seconds;
    const double batched_fps = static_cast<double>(files) / m.batched_seconds;
    std::printf("%s{\"policy\":\"%s\",\"scalar_files_per_sec\":%.1f,"
                "\"batched_files_per_sec\":%.1f,\"speedup\":%.2f}",
                i == 0 ? "" : ",", m.policy.c_str(), scalar_fps, batched_fps,
                m.scalar_seconds / m.batched_seconds);
  }
  std::printf("]}\n");

  // Run report: per-policy throughput scalars for the CI perf gate
  // (tools/bench_diff.py reads *_per_sec as higher-is-better).
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("files", static_cast<double>(files));
  for (const Measurement& m : results) {
    metrics.emplace_back(m.policy + ".scalar_files_per_sec",
                         static_cast<double>(files) / m.scalar_seconds);
    metrics.emplace_back(m.policy + ".batched_files_per_sec",
                         static_cast<double>(files) / m.batched_seconds);
    metrics.emplace_back(m.policy + ".speedup",
                         m.scalar_seconds / m.batched_seconds);
  }
  benchx::write_run_report("micro_batch_plan", metrics);
  return 0;
}
