// Figure 11 — "The performance for different number of neurons and
// filters": final optimal-action rate (mean and spread over repeated runs)
// as the actor/critic width sweeps {4, 16, 32, 64, 128}. The paper: the
// rate stabilizes from 32 units, and by 64 the run-to-run variance becomes
// negligible (~95% optimal action rate at 64-128 with error bars shrinking).

#include <iostream>

#include "common.hpp"
#include "core/sweep_runner.hpp"
#include "stats/descriptive.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig11: optimal action rate vs network width (Figure 11)\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG11_FILES", 400));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);

  const std::vector<std::size_t> widths{4, 16, 32, 64, 128};
  const auto runs =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG11_RUNS", 2));
  const auto episodes = static_cast<std::size_t>(
      util::env_int("MINICOST_FIG11_EPISODES", 15000));
  std::cout << "(paper repeats 10x; default here is " << runs
            << " runs — raise MINICOST_FIG11_RUNS to match)\n";

  // The width×run grid flattens into one sweep point per (width, run) pair
  // so every training run farms out independently (MINICOST_SWEEP_POOL).
  // Seeds reproduce the serial bench exactly: workload.seed + 100*(run+1).
  struct Point {
    double rate = 0.0;
    double seconds = 0.0;
  };
  benchx::SweepPool sweep_pool;
  core::SweepRunner runner(workload.seed, sweep_pool.get());
  const std::size_t point_count = widths.size() * runs;
  std::cout << "  sweep farm: " << point_count << " points on "
            << sweep_pool.size() << " pool thread(s)\n";
  const std::vector<Point> points = runner.run<Point>(
      point_count, [&](core::SweepPointContext& ctx) {
        const std::size_t width = widths[ctx.index / runs];
        const std::size_t run = ctx.index % runs;
        rl::A3CConfig config;
        config.filters = width;
        config.hidden = width;
        rl::A3CAgent agent(config, workload.seed + 100 * (run + 1));
        rl::TrainOptions options;
        options.episodes = episodes;
        options.report_every = episodes;
        util::Stopwatch watch;
        agent.train(tr, prices, options);
        Point point;
        point.rate = eval.action_rate(agent);
        point.seconds = watch.seconds();
        ctx.log << "  width=" << width << " run=" << run
                << " rate=" << util::format_double(point.rate, 3) << "\n";
        return point;
      });

  util::Table table({"neurons+filters", "mean action rate", "min", "max",
                     "spread", "train s/run"});
  for (std::size_t w = 0; w < widths.size(); ++w) {
    stats::RunningStats rates;
    double seconds = 0.0;
    for (std::size_t run = 0; run < runs; ++run) {
      rates.add(points[w * runs + run].rate);
      seconds += points[w * runs + run].seconds;
    }
    table.add_row({util::format_count(widths[w]),
                   util::format_double(rates.mean(), 3),
                   util::format_double(rates.min(), 3),
                   util::format_double(rates.max(), 3),
                   util::format_double(rates.max() - rates.min(), 3),
                   util::format_double(seconds / static_cast<double>(runs),
                                       1)});
    std::cout << "  width=" << widths[w]
              << " mean=" << util::format_double(rates.mean(), 3) << "\n";
  }
  benchx::emit("fig11", "Figure 11: action rate vs number of neurons/filters",
               table);
  benchx::expectation(
      "the mean rate climbs with width and stabilizes from ~32 units; by 64 "
      "the spread across runs becomes small (the paper reports ~95% with "
      "negligible variance at 64-128)");
  return 0;
}
