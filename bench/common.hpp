#pragma once
// Shared experiment harness for the figure benches.
//
// Environment knobs (all optional):
//   MINICOST_SCALE     total files in the workload        (default 2500)
//   MINICOST_EPISODES  A3C training episodes              (default 120000)
//   MINICOST_SEED      experiment seed                    (default 42)
//   MINICOST_OUT       output directory for CSV dumps     (default bench_out)
//
// The trained agent is checkpointed under MINICOST_OUT and shared between
// fig07 / fig08 / fig13 (training is the expensive step); delete the
// checkpoint (or change seed/scale) to retrain.

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/planner.hpp"
#include "core/rl_policy.hpp"
#include "pricing/policy.hpp"
#include "rl/a3c.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace minicost::benchx {

struct Workload {
  trace::RequestTrace full;   ///< all files, full 62-day horizon
  trace::RequestTrace train;  ///< 80% of files (paper Sec. 6.1)
  trace::RequestTrace test;   ///< the held-out 20%
  std::uint64_t seed = 0;
};

/// The standard Wikipedia-like workload at MINICOST_SCALE files.
Workload standard_workload(double grouped_fraction = 0.3);

/// The default price sheet (Azure 2020).
pricing::PricingPolicy standard_pricing();

/// Evaluation window: the last 35 days (the paper plots days 7..35).
std::size_t eval_start(const trace::RequestTrace& trace);

/// Trains (or loads the cached) standard agent on the workload's training
/// files. Episodes default to MINICOST_EPISODES. Pass a non-default pricing
/// (plus a distinct cache tag) to train an agent for that price sheet.
std::unique_ptr<rl::A3CAgent> shared_agent(
    const Workload& workload, std::size_t episodes = 0,
    const pricing::PricingPolicy* pricing = nullptr,
    const std::string& tag = "");

/// Output directory for CSV dumps (created on demand).
std::filesystem::path bench_out();

/// Prints the table under a figure banner and mirrors it to
/// bench_out()/<name>.csv. Also leaves the machine-readable run report
/// (write_run_report below) next to the CSV.
void emit(const std::string& name, const std::string& banner,
          const util::Table& table);

/// Writes the schema-versioned observability run report for this process to
/// bench_out()/<name>.json (src/obs/run_report.hpp): env fingerprint, every
/// obs counter/timer touched so far, peak RSS, plus the bench-specific
/// `metrics` scalars. Refuses to overwrite a report written under a
/// different env fingerprint — those get a <name>.<k>.json sibling instead.
/// Returns the path written.
std::filesystem::path write_run_report(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics = {});

/// Prints the "expected shape" note that accompanies every figure.
void expectation(const std::string& text);

/// Sweep concurrency knob for the core::SweepRunner figure benches, read
/// from MINICOST_SWEEP_POOL:
///   1         → serial (get() == nullptr), the determinism reference
///   N > 1     → a private N-thread pool owned by this object
///   0 / unset → the shared process pool (hardware-sized)
/// Per-point results are pool-size independent by the SweepRunner contract;
/// the CI sweep smoke pins that by diffing pool sizes 1 and 4.
class SweepPool {
 public:
  SweepPool();
  util::ThreadPool* get() const noexcept { return pool_; }
  /// Human-readable size for banners: 1 for serial.
  std::size_t size() const noexcept { return pool_ ? pool_->size() : 1; }

 private:
  std::unique_ptr<util::ThreadPool> owned_;
  util::ThreadPool* pool_ = nullptr;
};

/// Optimal-action-rate evaluator for the RL-dynamics figures (9/10/11):
/// "the ratio between the actions made by the RL agent and the actions from
/// Optimal" over a fixed 14-day window of a fixed evaluation trace.
class RlEval {
 public:
  /// Uses the last `window` days of `eval_trace`; precomputes the Optimal
  /// plan once. The trace is copied (benches hand in temporaries).
  RlEval(trace::RequestTrace eval_trace, pricing::PricingPolicy pricing,
         std::size_t window = 14);

  /// Greedy-deployment decisions of `agent` vs the Optimal plan.
  double action_rate(rl::A3CAgent& agent) const;

  /// Total billed cost of the agent's plan over the window.
  double cost(rl::A3CAgent& agent) const;
  double optimal_cost() const noexcept { return optimal_cost_; }

 private:
  core::PlanResult run(rl::A3CAgent& agent) const;

  trace::RequestTrace trace_;
  pricing::PricingPolicy pricing_;
  core::PlanOptions options_;
  sim::HorizonPlan optimal_plan_;
  double optimal_cost_ = 0.0;
};

}  // namespace minicost::benchx
