// Training throughput: the scalar per-step A3C update path vs the batched
// episode update (one forward_batch/backward_batch per network over the
// episode, fused loss-gradient rows, in-place SIMD optimizer step). Two
// numbers per path: episodes/second end to end, and nanoseconds per env
// step spent in the update phase alone (the rl.a3c.grad + rl.a3c.opt_step
// obs timers) — the phase the batching refactor is accountable for.
//
// Output is machine-readable JSON on stdout (one object), e.g.
//   {"bench":"micro_train","episodes":1500, ...,
//    "scalar_episodes_per_sec":...,"batched_episodes_per_sec":...,
//    "scalar_update_step_ns":...,"batched_update_step_ns":...,
//    "update_speedup":...}
//
// A second section measures multi-worker training scaling: end-to-end
// episodes/second at 1/2/4/8/16 workers on the sharded parameter server
// (ParamServer, DESIGN.md §14), plus the derived scaling_4w speedup and
// parallel_efficiency_4w = scaling_4w / 4 that the CI perf gate reads.
//
// MINICOST_SCALE overrides the trace file count (default 2000);
// MINICOST_SEED the trace/agent seed;
// MINICOST_TRAIN_SHARDS the parameter shard count for the scaling runs
// (default 8); MINICOST_TRAIN_SCALING_EPISODES the episodes per scaling
// point (default 1500).

#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "pricing/policy.hpp"
#include "rl/a3c.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace minicost;

double timer_total_ns(std::string_view name) {
  for (const auto& t : obs::Registry::global().timers())
    if (t.name == name) return static_cast<double>(t.stats.total_ns);
  return 0.0;
}

struct Measurement {
  double seconds = 0.0;    ///< wall time for the whole train() call
  double update_ns = 0.0;  ///< total ns in rl.a3c.grad + rl.a3c.opt_step
  std::size_t env_steps = 0;
};

// Trains a fresh fixed-seed agent for `episodes` down one update path.
// Single worker: the paths are byte-identical there, so both measurements
// do exactly the same arithmetic work per episode.
Measurement measure(bool batched, const trace::RequestTrace& trace,
                    std::size_t episodes) {
  rl::A3CConfig config;
  config.workers = 1;
  config.batched_update = batched;
  rl::A3CAgent agent(config, util::bench_seed());

  obs::Registry::global().reset();
  rl::TrainOptions options;
  options.episodes = episodes;
  options.report_every = episodes;

  Measurement m;
  util::Stopwatch watch;
  agent.train(trace, pricing::PricingPolicy::azure_2020(), options);
  m.seconds = watch.seconds();
  m.update_ns =
      timer_total_ns("rl.a3c.grad") + timer_total_ns("rl.a3c.opt_step");
  m.env_steps = agent.trained_steps();
  return m;
}

// End-to-end episodes/second of a fresh fixed-seed agent trained with
// `workers` threads on `shards` parameter shards (deterministic wavefront
// path; no init racing so the measured phase is pure training).
double scaling_eps_per_sec(std::size_t workers, std::size_t shards,
                           const trace::RequestTrace& trace,
                           std::size_t episodes) {
  rl::A3CConfig config;
  config.workers = workers;
  config.param_shards = shards;
  config.init_candidates = 1;
  rl::A3CAgent agent(config, util::bench_seed());

  rl::TrainOptions options;
  options.episodes = episodes;
  options.report_every = episodes;
  util::Stopwatch watch;
  agent.train(trace, pricing::PricingPolicy::azure_2020(), options);
  return static_cast<double>(episodes) / watch.seconds();
}

}  // namespace

int main() {
  const auto files = static_cast<std::size_t>(util::bench_scale(2000));
  const std::size_t episodes = 1500;

  trace::SyntheticConfig trace_config;
  trace_config.file_count = files;
  trace_config.days = 62;
  trace_config.seed = util::bench_seed();
  const trace::RequestTrace trace = trace::generate_synthetic(trace_config);

  // The update-phase split comes from the obs phase timers.
  obs::set_enabled(true);
  const Measurement scalar = measure(/*batched=*/false, trace, episodes);
  const Measurement batched = measure(/*batched=*/true, trace, episodes);

  const double eps = static_cast<double>(episodes);
  const double scalar_eps_sec = eps / scalar.seconds;
  const double batched_eps_sec = eps / batched.seconds;
  const double scalar_step_ns =
      scalar.update_ns / static_cast<double>(scalar.env_steps);
  const double batched_step_ns =
      batched.update_ns / static_cast<double>(batched.env_steps);

  // Worker-scaling sweep: the same workload trained end to end at each
  // worker count. Counts beyond the hardware thread count still run (the
  // wavefront schedule tolerates oversubscription) but carry no gate.
  const auto shards = static_cast<std::size_t>(
      util::env_int("MINICOST_TRAIN_SHARDS", 8));
  const auto scaling_episodes = static_cast<std::size_t>(
      util::env_int("MINICOST_TRAIN_SCALING_EPISODES", 1500));
  const std::size_t hardware_threads = std::thread::hardware_concurrency();
  const std::vector<std::size_t> worker_counts{1, 2, 4, 8, 16};
  std::vector<double> worker_eps;
  for (std::size_t workers : worker_counts)
    worker_eps.push_back(
        scaling_eps_per_sec(workers, shards, trace, scaling_episodes));
  const double scaling_4w = worker_eps[2] / worker_eps[0];
  const double efficiency_4w = scaling_4w / 4.0;

  std::printf(
      "{\"bench\":\"micro_train\",\"files\":%zu,\"episodes\":%zu,"
      "\"scalar_episodes_per_sec\":%.1f,\"batched_episodes_per_sec\":%.1f,"
      "\"episodes_speedup\":%.2f,\"scalar_update_step_ns\":%.1f,"
      "\"batched_update_step_ns\":%.1f,\"update_speedup\":%.2f,"
      "\"param_shards\":%zu,\"hardware_threads\":%zu",
      files, episodes, scalar_eps_sec, batched_eps_sec,
      batched_eps_sec / scalar_eps_sec, scalar_step_ns, batched_step_ns,
      scalar_step_ns / batched_step_ns, shards, hardware_threads);
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    std::printf(",\"train_eps_per_sec_w%zu\":%.1f", worker_counts[i],
                worker_eps[i]);
  std::printf(",\"scaling_4w\":%.2f,\"parallel_efficiency_4w\":%.2f}\n",
              scaling_4w, efficiency_4w);

  // Run report for the CI perf gate: *_per_sec / *speedup gate as
  // higher-is-better; the per-step *_ns pairs sit under bench_diff's
  // --min-seconds floor on CI, so the speedup ratios carry the gate.
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("episodes", eps);
  metrics.emplace_back("scalar_episodes_per_sec", scalar_eps_sec);
  metrics.emplace_back("batched_episodes_per_sec", batched_eps_sec);
  metrics.emplace_back("episodes_speedup", batched_eps_sec / scalar_eps_sec);
  metrics.emplace_back("scalar_update_step_ns", scalar_step_ns);
  metrics.emplace_back("batched_update_step_ns", batched_step_ns);
  metrics.emplace_back("update_speedup", scalar_step_ns / batched_step_ns);
  for (std::size_t i = 0; i < worker_counts.size(); ++i)
    metrics.emplace_back(
        "train_eps_per_sec_w" + std::to_string(worker_counts[i]),
        worker_eps[i]);
  metrics.emplace_back("scaling_4w", scaling_4w);
  metrics.emplace_back("parallel_efficiency_4w", efficiency_4w);
  metrics.emplace_back("hardware_threads",
                       static_cast<double>(hardware_threads));
  benchx::write_run_report("micro_train", metrics);
  return 0;
}
