// Training throughput: the scalar per-step A3C update path vs the batched
// episode update (one forward_batch/backward_batch per network over the
// episode, fused loss-gradient rows, in-place SIMD optimizer step). Two
// numbers per path: episodes/second end to end, and nanoseconds per env
// step spent in the update phase alone (the rl.a3c.grad + rl.a3c.opt_step
// obs timers) — the phase the batching refactor is accountable for.
//
// Output is machine-readable JSON on stdout (one object), e.g.
//   {"bench":"micro_train","episodes":1500, ...,
//    "scalar_episodes_per_sec":...,"batched_episodes_per_sec":...,
//    "scalar_update_step_ns":...,"batched_update_step_ns":...,
//    "update_speedup":...}
//
// MINICOST_SCALE overrides the trace file count (default 2000);
// MINICOST_SEED the trace/agent seed.

#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common.hpp"
#include "obs/metrics.hpp"
#include "pricing/policy.hpp"
#include "rl/a3c.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace minicost;

double timer_total_ns(std::string_view name) {
  for (const auto& t : obs::Registry::global().timers())
    if (t.name == name) return static_cast<double>(t.stats.total_ns);
  return 0.0;
}

struct Measurement {
  double seconds = 0.0;    ///< wall time for the whole train() call
  double update_ns = 0.0;  ///< total ns in rl.a3c.grad + rl.a3c.opt_step
  std::size_t env_steps = 0;
};

// Trains a fresh fixed-seed agent for `episodes` down one update path.
// Single worker: the paths are byte-identical there, so both measurements
// do exactly the same arithmetic work per episode.
Measurement measure(bool batched, const trace::RequestTrace& trace,
                    std::size_t episodes) {
  rl::A3CConfig config;
  config.workers = 1;
  config.batched_update = batched;
  rl::A3CAgent agent(config, util::bench_seed());

  obs::Registry::global().reset();
  rl::TrainOptions options;
  options.episodes = episodes;
  options.report_every = episodes;

  Measurement m;
  util::Stopwatch watch;
  agent.train(trace, pricing::PricingPolicy::azure_2020(), options);
  m.seconds = watch.seconds();
  m.update_ns =
      timer_total_ns("rl.a3c.grad") + timer_total_ns("rl.a3c.opt_step");
  m.env_steps = agent.trained_steps();
  return m;
}

}  // namespace

int main() {
  const auto files = static_cast<std::size_t>(util::bench_scale(2000));
  const std::size_t episodes = 1500;

  trace::SyntheticConfig trace_config;
  trace_config.file_count = files;
  trace_config.days = 62;
  trace_config.seed = util::bench_seed();
  const trace::RequestTrace trace = trace::generate_synthetic(trace_config);

  // The update-phase split comes from the obs phase timers.
  obs::set_enabled(true);
  const Measurement scalar = measure(/*batched=*/false, trace, episodes);
  const Measurement batched = measure(/*batched=*/true, trace, episodes);

  const double eps = static_cast<double>(episodes);
  const double scalar_eps_sec = eps / scalar.seconds;
  const double batched_eps_sec = eps / batched.seconds;
  const double scalar_step_ns =
      scalar.update_ns / static_cast<double>(scalar.env_steps);
  const double batched_step_ns =
      batched.update_ns / static_cast<double>(batched.env_steps);

  std::printf(
      "{\"bench\":\"micro_train\",\"files\":%zu,\"episodes\":%zu,"
      "\"scalar_episodes_per_sec\":%.1f,\"batched_episodes_per_sec\":%.1f,"
      "\"episodes_speedup\":%.2f,\"scalar_update_step_ns\":%.1f,"
      "\"batched_update_step_ns\":%.1f,\"update_speedup\":%.2f}\n",
      files, episodes, scalar_eps_sec, batched_eps_sec,
      batched_eps_sec / scalar_eps_sec, scalar_step_ns, batched_step_ns,
      scalar_step_ns / batched_step_ns);

  // Run report for the CI perf gate: *_per_sec / *speedup gate as
  // higher-is-better; the per-step *_ns pairs sit under bench_diff's
  // --min-seconds floor on CI, so the speedup ratios carry the gate.
  std::vector<std::pair<std::string, double>> metrics;
  metrics.emplace_back("episodes", eps);
  metrics.emplace_back("scalar_episodes_per_sec", scalar_eps_sec);
  metrics.emplace_back("batched_episodes_per_sec", batched_eps_sec);
  metrics.emplace_back("episodes_speedup", batched_eps_sec / scalar_eps_sec);
  metrics.emplace_back("scalar_update_step_ns", scalar_step_ns);
  metrics.emplace_back("batched_update_step_ns", batched_step_ns);
  metrics.emplace_back("update_speedup", scalar_step_ns / batched_step_ns);
  benchx::write_run_report("micro_train", metrics);
  return 0;
}
