// Figure 3 — "Potential saved money for one day" per variability bucket:
// the gap between a static customer assignment and the offline-optimal
// (brute-force ≡ per-file DP) assignment, broken down by the paper's
// std-dev buckets.
//
// Two baselines are reported:
//   * single-tier  — all files hot or all cold, whichever is cheaper
//     (the paper's literal description);
//   * per-file static — every file pinned to its best static tier, which
//     isolates the value of *dynamic re-tiering* (this is the series whose
//     per-file value grows with variability, the figure's headline shape).

#include <iostream>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig03: potential savings of optimal assignment (Figure 3)\n";
  const benchx::Workload workload = benchx::standard_workload();
  const trace::RequestTrace& tr = workload.full;
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const trace::VariabilityAnalysis analysis = trace::analyze_variability(tr);
  const std::size_t start = benchx::eval_start(tr);
  const std::size_t days = tr.days() - start;

  core::PlanOptions options;
  options.start_day = start;

  // Pinned-to-initial policy reused for both static baselines.
  class PinnedPolicy final : public core::TieringPolicy {
   public:
    std::string name() const override { return "Pinned"; }
    core::Knowledge knowledge() const noexcept override {
      return core::Knowledge::kNone;
    }
    pricing::StorageTier decide(const core::PlanContext&, trace::FileId,
                                std::size_t,
                                pricing::StorageTier current) override {
      return current;
    }
  };

  auto run_with_initial = [&](std::vector<pricing::StorageTier> initial,
                              core::TieringPolicy& policy) {
    core::PlanOptions opts = options;
    opts.initial_tiers = std::move(initial);
    return core::run_policy(tr, prices, policy, opts);
  };

  // Single-tier baseline (all hot vs all cold, take the cheaper).
  PinnedPolicy pinned;
  const core::PlanResult all_hot = run_with_initial(
      std::vector<pricing::StorageTier>(tr.file_count(),
                                        pricing::StorageTier::kHot),
      pinned);
  const core::PlanResult all_cold = run_with_initial(
      std::vector<pricing::StorageTier>(tr.file_count(),
                                        pricing::StorageTier::kCool),
      pinned);
  const core::PlanResult& single_tier =
      all_hot.report.grand_total().total() <=
              all_cold.report.grand_total().total()
          ? all_hot
          : all_cold;

  // Per-file static baseline (3-tier best static) and the optimum.
  const auto static_tiers =
      core::static_initial_tiers(tr, prices, start, /*include_archive=*/true);
  const core::PlanResult per_file_static =
      run_with_initial(static_tiers, pinned);
  core::OptimalPolicy optimal;
  core::PlanOptions optimal_options = options;
  optimal_options.initial_tiers = static_tiers;
  const core::PlanResult best =
      core::run_policy(tr, prices, optimal, optimal_options);

  const auto single_buckets =
      core::cost_by_variability(analysis, single_tier);
  const auto static_buckets =
      core::cost_by_variability(analysis, per_file_static);
  const auto optimal_buckets = core::cost_by_variability(analysis, best);

  util::Table table({"bucket", "files", "saved/day vs single-tier",
                     "saved/day vs per-file static",
                     "dynamic saving per file-day"});
  for (std::size_t b = 0; b < single_buckets.size(); ++b) {
    const double vs_single =
        (single_buckets[b].total_cost - optimal_buckets[b].total_cost) /
        static_cast<double>(days);
    const double vs_static =
        (static_buckets[b].total_cost - optimal_buckets[b].total_cost) /
        static_cast<double>(days);
    const double per_file =
        single_buckets[b].files == 0
            ? 0.0
            : vs_static / static_cast<double>(single_buckets[b].files);
    table.add_row({single_buckets[b].label,
                   util::format_count(single_buckets[b].files),
                   util::format_money(vs_single), util::format_money(vs_static),
                   util::format_double(per_file, 8)});
  }
  benchx::emit("fig03", "Figure 3: potential saved money per bucket", table);
  benchx::expectation(
      "savings exist in every bucket; the low-variability bucket saves a lot "
      "in total (sheer count) while the >0.8 bucket saves the most per file "
      "(flash crowds are where re-tiering pays)");
  std::cout << "totals: single-tier="
            << util::format_money(single_tier.report.grand_total().total())
            << " per-file-static="
            << util::format_money(per_file_static.report.grand_total().total())
            << " optimal="
            << util::format_money(best.report.grand_total().total()) << "\n";
  return 0;
}
