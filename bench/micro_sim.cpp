// Microbenchmarks for the cost simulator: per-file-day cost evaluation, a
// full daily billing pass, and the per-file optimal DP.

#include <benchmark/benchmark.h>

#include "core/optimal.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace minicost;

const trace::RequestTrace& bench_trace() {
  static const trace::RequestTrace tr = [] {
    trace::SyntheticConfig config;
    config.file_count = 2000;
    config.seed = 42;
    return trace::generate_synthetic(config);
  }();
  return tr;
}

void BM_Sim_FileDayCost(benchmark::State& state) {
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();
  double reads = 3.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::file_day_cost(azure, pricing::StorageTier::kCool,
                           pricing::StorageTier::kHot, reads, 0.12, 0.1));
    reads += 1e-9;  // defeat constant folding
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sim_FileDayCost);

void BM_Sim_DailyBillingPass(benchmark::State& state) {
  const trace::RequestTrace& tr = bench_trace();
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();
  const sim::DayPlan plan(tr.file_count(), pricing::StorageTier::kHot);
  for (auto _ : state) {
    sim::StorageSimulator simulator(tr, azure);
    simulator.advance(plan);
    benchmark::DoNotOptimize(simulator.report().grand_total().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.file_count()));
}
BENCHMARK(BM_Sim_DailyBillingPass)->Unit(benchmark::kMillisecond);

void BM_Sim_FullHorizonBilling(benchmark::State& state) {
  const trace::RequestTrace& tr = bench_trace();
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();
  const sim::HorizonPlan plan(
      tr.days(), sim::DayPlan(tr.file_count(), pricing::StorageTier::kCool));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate(tr, azure, plan).grand_total().total());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.file_count() * tr.days()));
}
BENCHMARK(BM_Sim_FullHorizonBilling)->Unit(benchmark::kMillisecond);

void BM_Sim_PerFileOptimalDp(benchmark::State& state) {
  const trace::RequestTrace& tr = bench_trace();
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto id = static_cast<trace::FileId>(i % tr.file_count());
    benchmark::DoNotOptimize(core::optimal_sequence(
        azure, tr.file(id), 0, tr.days(), pricing::StorageTier::kHot));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sim_PerFileOptimalDp);

}  // namespace
