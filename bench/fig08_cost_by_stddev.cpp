// Figure 8 — "Cost per data file by standard deviations of daily request
// frequencies": the daily monetary cost of each policy broken down by the
// paper's variability buckets.

#include <iostream>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/rl_policy.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig08: daily cost per variability bucket (Figure 8)\n";
  const benchx::Workload workload = benchx::standard_workload();
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const trace::RequestTrace& test = workload.test;
  const trace::VariabilityAnalysis analysis = trace::analyze_variability(test);

  auto agent = benchx::shared_agent(workload);

  core::PlanOptions options;
  options.start_day = benchx::eval_start(test);
  options.initial_tiers =
      core::static_initial_tiers(test, prices, options.start_day);
  const double days = static_cast<double>(test.days() - options.start_day);

  auto hot = core::make_hot_policy();
  auto cold = core::make_cold_policy();
  core::GreedyPolicy greedy;
  core::RlPolicy minicost(*agent);
  core::OptimalPolicy optimal;

  struct Row {
    std::string name;
    std::vector<core::BucketCost> buckets;
  };
  std::vector<Row> rows;
  for (auto& [name, policy] :
       std::vector<std::pair<std::string, core::TieringPolicy*>>{
           {"Hot", hot.get()},
           {"Cold", cold.get()},
           {"Greedy", &greedy},
           {"MiniCost", &minicost},
           {"Optimal", &optimal}}) {
    rows.push_back({name, core::cost_by_variability(
                              analysis,
                              core::run_policy(test, prices, *policy, options))});
  }

  util::Table table({"policy", "0-0.1 $/day", "0.1-0.3", "0.3-0.5", "0.5-0.8",
                     ">0.8", "per-file-day >0.8"});
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (const core::BucketCost& bucket : row.buckets)
      cells.push_back(
          util::format_double(bucket.total_cost / days, 5));
    cells.push_back(util::format_double(row.buckets.back().cost_per_file_day, 7));
    table.add_row(std::move(cells));
  }
  benchx::emit("fig08", "Figure 8: daily cost for all files, per bucket",
               table);

  util::Table counts({"bucket", "files"});
  for (const auto& bucket : rows[0].buckets)
    counts.add_row({bucket.label, util::format_count(bucket.files)});
  std::cout << counts.to_string();
  benchx::expectation(
      "Cold > Hot > Greedy > MiniCost >= Optimal inside every populated "
      "bucket; per-file cost grows with variability (volatile files carry "
      "more traffic) once buckets hold enough files — the top two buckets "
      "of a small test split are sampling-noise dominated, raise "
      "MINICOST_SCALE to see the trend here");
  return 0;
}
