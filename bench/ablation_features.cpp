// Ablation — state features (paper Sec. 4.2.1's state definition): drops
// feature blocks from the encoder and measures the trained policy's cost:
//   * full state (14-day history + write/size + tier + day-of-week + means),
//   * no day-of-week channel (the weekly cycle must be inferred raw),
//   * no summary means (boundary resolution comes only from the conv),
//   * short 7-day history (less than one request cycle).

#include <iostream>

#include "common.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"

int main() {
  using namespace minicost;
  std::cout << "ablation_features: state-feature ablation\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_FILES", 600));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);
  const auto episodes =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_EPISODES", 35000));

  struct Variant {
    std::string name;
    rl::FeatureConfig features;
  };
  std::vector<Variant> variants;
  {
    rl::FeatureConfig full;
    variants.push_back({"full state", full});

    rl::FeatureConfig no_dow;
    no_dow.include_day_of_week = false;
    variants.push_back({"no day-of-week", no_dow});

    rl::FeatureConfig no_summary;
    no_summary.include_summary = false;
    variants.push_back({"no summary means", no_summary});

    rl::FeatureConfig short_history;
    short_history.history_len = 7;
    variants.push_back({"7-day history", short_history});
  }

  util::Table table({"state variant", "features", "eval cost", "vs optimal",
                     "action rate"});
  for (const Variant& variant : variants) {
    rl::A3CConfig config;
    config.features = variant.features;
    rl::A3CAgent agent(config, workload.seed);
    rl::TrainOptions options;
    options.episodes = episodes;
    options.report_every = episodes;
    agent.train(tr, prices, options);
    const double cost = eval.cost(agent);
    table.add_row({variant.name,
                   util::format_count(agent.featurizer().feature_count()),
                   util::format_money(cost),
                   util::format_double(cost / eval.optimal_cost(), 4),
                   util::format_double(eval.action_rate(agent), 3)});
    std::cout << "  " << variant.name << ": "
              << util::format_double(cost / eval.optimal_cost(), 4)
              << "x optimal\n";
  }
  benchx::emit("ablation_features", "State-feature ablation", table);
  benchx::expectation(
      "the full state trains closest to Optimal; removing the summary means "
      "or shortening the history below one weekly cycle costs accuracy on "
      "the tier-boundary files");
  return 0;
}
