// Microbenchmarks for the Algorithm-2 aggregation machinery: the Ω scan
// over all groups, and materializing the rewritten trace.

#include <benchmark/benchmark.h>

#include "core/aggregation.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace minicost;

const trace::RequestTrace& grouped_trace() {
  static const trace::RequestTrace tr = [] {
    trace::SyntheticConfig config;
    config.file_count = 4000;
    config.grouped_file_fraction = 0.5;
    config.seed = 42;
    return trace::generate_synthetic(config);
  }();
  return tr;
}

void BM_Agg_Coefficient(benchmark::State& state) {
  const pricing::PricingPolicy azure = pricing::PricingPolicy::azure_2020();
  double rdc = 12.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::aggregation_coefficient(
        azure, pricing::StorageTier::kHot, 4, 0.4, rdc, 7, 0.3));
    rdc += 1e-9;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Agg_Coefficient);

void BM_Agg_EvaluateAllGroups(benchmark::State& state) {
  const trace::RequestTrace& tr = grouped_trace();
  const pricing::PricingPolicy prices =
      pricing::with_op_price_multiplier(pricing::PricingPolicy::azure_2020(),
                                        500.0);
  const core::AggregationConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_groups(tr, prices, config, 0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(tr.groups().size()));
}
BENCHMARK(BM_Agg_EvaluateAllGroups)->Unit(benchmark::kMillisecond);

void BM_Agg_ApplyAggregation(benchmark::State& state) {
  const trace::RequestTrace& tr = grouped_trace();
  const pricing::PricingPolicy prices =
      pricing::with_op_price_multiplier(pricing::PricingPolicy::azure_2020(),
                                        500.0);
  const core::AggregationConfig config;
  const auto evaluations = core::evaluate_groups(tr, prices, config, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::apply_aggregation(tr, evaluations));
  }
}
BENCHMARK(BM_Agg_ApplyAggregation)->Unit(benchmark::kMillisecond);

void BM_Agg_WeeklyController(benchmark::State& state) {
  const trace::RequestTrace& tr = grouped_trace();
  const pricing::PricingPolicy prices =
      pricing::with_op_price_multiplier(pricing::PricingPolicy::azure_2020(),
                                        500.0);
  core::AggregationConfig config;
  for (auto _ : state) {
    core::AggregationController controller(prices, config);
    for (std::size_t period = 0; period + 7 <= tr.days(); period += 7)
      benchmark::DoNotOptimize(controller.on_period_start(tr, period));
  }
}
BENCHMARK(BM_Agg_WeeklyController)->Unit(benchmark::kMillisecond);

}  // namespace
