// Section 1/3 price quotes — self-check of the pricing presets against the
// numbers the paper states, plus the derived per-day cost structure the
// other experiments rely on.

#include <iostream>

#include "common.hpp"
#include "sim/cost_model.hpp"

int main() {
  using namespace minicost;
  std::cout << "pricing_table: preset self-check\n";
  const pricing::PricingPolicy azure = benchx::standard_pricing();
  azure.check_tier_monotonicity();

  util::Table quotes({"quantity", "paper quote", "preset value"});
  quotes.add_row({"hot reads per 10k ops (US West)", "$0.0044",
                  util::format_double(
                      azure.tier(pricing::StorageTier::kHot).read_per_10k_ops,
                      4)});
  quotes.add_row({"cool reads per 10k ops", "$0.01",
                  util::format_double(
                      azure.tier(pricing::StorageTier::kCool).read_per_10k_ops,
                      4)});
  benchx::emit("pricing_quotes", "Paper price quotes vs preset", quotes);

  util::Table tiers({"tier", "storage $/GB-mo", "read $/10k", "write $/10k",
                     "read $/GB", "write $/GB", "$/day @100MB idle"});
  for (pricing::StorageTier t : pricing::all_tiers()) {
    const pricing::TierPrice& p = azure.tier(t);
    tiers.add_row(
        {std::string(pricing::tier_name(t)),
         util::format_double(p.storage_gb_month, 5),
         util::format_double(p.read_per_10k_ops, 4),
         util::format_double(p.write_per_10k_ops, 4),
         util::format_double(p.read_per_gb, 4),
         util::format_double(p.write_per_gb, 4),
         util::format_double(azure.storage_cost_per_day(t, 100.0 / 1024.0), 7)});
  }
  benchx::emit("pricing_tiers", "Azure-2020 preset price sheet", tiers);

  util::Table crossovers({"boundary", "reads/day @100MB"});
  crossovers.add_row(
      {"hot vs cool",
       util::format_double(
           sim::tier_crossover_reads(azure, pricing::StorageTier::kHot,
                                     pricing::StorageTier::kCool,
                                     100.0 / 1024.0, 0.02),
           3)});
  crossovers.add_row(
      {"cool vs archive",
       util::format_double(
           sim::tier_crossover_reads(azure, pricing::StorageTier::kCool,
                                     pricing::StorageTier::kArchive,
                                     100.0 / 1024.0, 0.02),
           3)});
  benchx::emit("pricing_crossovers", "Tier break-even request rates",
               crossovers);
  benchx::expectation(
      "the quoted op prices match the paper verbatim; storage gets cheaper "
      "and access pricier toward colder tiers, with break-evens inside the "
      "workload's popularity range (that is what makes tiering a decision)");
  return 0;
}
