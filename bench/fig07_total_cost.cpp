// Figure 7 — "Comparison of total costs": total monetary cost for all test
// files after 7/14/21/28/35 days, for Hot / Cold / Greedy / MiniCost /
// Optimal. The paper's headline result: the cost curves order
// Cold > Hot > Greedy > MiniCost > Optimal at every horizon, with MiniCost
// closest to the Optimal lower bound.

#include <iostream>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/metrics.hpp"
#include "core/optimal.hpp"
#include "core/rl_policy.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig07: total cost vs days (Figure 7)\n";
  const benchx::Workload workload = benchx::standard_workload();
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const trace::RequestTrace& test = workload.test;

  auto agent = benchx::shared_agent(workload);

  core::PlanOptions options;
  options.start_day = benchx::eval_start(test);
  options.initial_tiers =
      core::static_initial_tiers(test, prices, options.start_day);

  auto hot = core::make_hot_policy();
  auto cold = core::make_cold_policy();
  core::GreedyPolicy greedy;
  core::RlPolicy minicost(*agent);
  core::OptimalPolicy optimal;

  struct Series {
    std::string name;
    core::PlanResult result;
  };
  std::vector<Series> series;
  series.push_back({"Hot", core::run_policy(test, prices, *hot, options)});
  series.push_back({"Cold", core::run_policy(test, prices, *cold, options)});
  series.push_back({"Greedy", core::run_policy(test, prices, greedy, options)});
  series.push_back(
      {"MiniCost", core::run_policy(test, prices, minicost, options)});
  series.push_back(
      {"Optimal", core::run_policy(test, prices, optimal, options)});

  util::Table table({"policy", "7d", "14d", "21d", "28d", "35d",
                     "35d vs optimal", "optimal-action rate"});
  const double optimal_total =
      series.back().result.report.grand_total().total();
  for (const Series& s : series) {
    std::vector<std::string> row{s.name};
    for (std::size_t day : {7u, 14u, 21u, 28u, 35u}) {
      const std::size_t index = std::min<std::size_t>(day, s.result.report.days()) - 1;
      row.push_back(util::format_money(s.result.report.cumulative_through(index)));
    }
    row.push_back(util::format_double(
        s.result.report.grand_total().total() / optimal_total, 4));
    row.push_back(util::format_double(
        core::action_agreement(s.result.plan, series.back().result.plan), 3));
    table.add_row(std::move(row));
  }
  benchx::emit("fig07", "Figure 7: cumulative total cost for all test files",
               table);
  benchx::expectation(
      "Cold > Hot > Greedy > MiniCost > Optimal at every horizon; MiniCost "
      "is the online policy closest to the offline Optimal lower bound");
  return 0;
}
