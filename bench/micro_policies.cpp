// Per-file decision latency for every policy — the microscopic view behind
// Figure 12 ("the average time cost for one data file storage type
// assignment per day is less than 1 ms").

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/rl_policy.hpp"

namespace {

using namespace minicost;

struct Fixture {
  Fixture()
      : workload(benchx::standard_workload()),
        prices(benchx::standard_pricing()),
        agent(benchx::shared_agent(workload, 20000)),
        initial(core::static_initial_tiers(workload.test, prices, 27)),
        context{workload.test, prices, 27, workload.test.days(), initial} {}

  benchx::Workload workload;
  pricing::PricingPolicy prices;
  std::unique_ptr<rl::A3CAgent> agent;
  std::vector<pricing::StorageTier> initial;
  core::PlanContext context;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void decide_loop(benchmark::State& state, core::TieringPolicy& policy) {
  Fixture& f = fixture();
  policy.prepare(f.context);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto id = static_cast<trace::FileId>(i % f.workload.test.file_count());
    benchmark::DoNotOptimize(policy.decide(f.context, id, 30, f.initial[id]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Decide_Hot(benchmark::State& state) {
  auto policy = core::make_hot_policy();
  decide_loop(state, *policy);
}
BENCHMARK(BM_Decide_Hot);

void BM_Decide_Greedy(benchmark::State& state) {
  core::GreedyPolicy policy;
  decide_loop(state, policy);
}
BENCHMARK(BM_Decide_Greedy);

void BM_Decide_MiniCost(benchmark::State& state) {
  core::RlPolicy policy(*fixture().agent);
  decide_loop(state, policy);
}
BENCHMARK(BM_Decide_MiniCost)->Unit(benchmark::kMicrosecond);

void BM_Decide_FeaturizeOnly(benchmark::State& state) {
  Fixture& f = fixture();
  const rl::Featurizer& featurizer = f.agent->featurizer();
  std::vector<double> buffer;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto id = static_cast<trace::FileId>(i % f.workload.test.file_count());
    featurizer.encode_into(f.workload.test.file(id), 30,
                           pricing::StorageTier::kHot, buffer);
    benchmark::DoNotOptimize(buffer.data());
    ++i;
  }
}
BENCHMARK(BM_Decide_FeaturizeOnly);

}  // namespace
