// Figure 10 — "The performance for different greedy rates": the
// optimal-action rate as a function of training steps for
// ε ∈ {0.001, 0.01, 0.1}. The paper's finding: small ε makes fast initial
// progress but converges to a worse final policy (too little exploration);
// ε = 0.1 is slowest initially but best in the end.

#include <iostream>

#include "common.hpp"
#include "core/sweep_runner.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig10: optimal action rate vs steps per greedy rate ε "
               "(Figure 10)\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG10_FILES", 500));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);

  const std::vector<double> epsilons{0.001, 0.01, 0.1};
  const auto max_episodes = static_cast<std::size_t>(
      util::env_int("MINICOST_FIG10_EPISODES", 36000));
  const std::size_t points = 10;

  struct Curve {
    double epsilon = 0.0;
    std::vector<std::pair<std::size_t, double>> samples;
  };
  // One independent agent per ε, farmed across the sweep pool; same seed
  // per point so ε is the only variable (MINICOST_SWEEP_POOL knob).
  benchx::SweepPool sweep_pool;
  core::SweepRunner runner(workload.seed, sweep_pool.get());
  std::cout << "  sweep farm: " << epsilons.size() << " points on "
            << sweep_pool.size() << " pool thread(s)\n";
  const std::vector<Curve> curves = runner.run<Curve>(
      epsilons.size(), [&](core::SweepPointContext& ctx) {
        const double epsilon = epsilons[ctx.index];
        rl::A3CConfig config;
        config.epsilon = epsilon;
        config.init_candidates = 1;  // raw training dynamics, no init racing
        rl::A3CAgent agent(config, workload.seed);
        Curve curve;
        curve.epsilon = epsilon;
        rl::TrainOptions options;
        options.episodes = max_episodes;
        options.report_every = max_episodes / points;
        options.on_progress = [&](const rl::TrainProgress& progress) {
          curve.samples.emplace_back(progress.env_steps,
                                     eval.action_rate(agent));
        };
        agent.train(tr, prices, options);
        ctx.log << "  ε=" << epsilon << " final rate="
                << util::format_double(curve.samples.back().second, 3) << "\n";
        return curve;
      });

  util::Table table({"steps(ε=0.001)", "rate", "steps(ε=0.01)", "rate ",
                     "steps(ε=0.1)", "rate  "});
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row;
    for (const Curve& curve : curves) {
      if (i < curve.samples.size()) {
        row.push_back(util::format_count(curve.samples[i].first));
        row.push_back(util::format_double(curve.samples[i].second, 3));
      } else {
        row.push_back("-");
        row.push_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  benchx::emit("fig10", "Figure 10: optimal-action rate vs training steps",
               table);
  benchx::expectation(
      "ε=0.001 rises fastest early but plateaus lowest; ε=0.1 explores more, "
      "progresses slower initially, and reaches the best final rate "
      "(final-rate order 0.1 > 0.01 > 0.001)");
  return 0;
}
