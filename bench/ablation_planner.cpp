// Ablation — planner families: on one workload, compares every decision
// engine in the repository against the Optimal lower bound:
//   static baselines (Hot / Cold / per-file static),
//   Greedy (2-tier, yesterday-informed) and its 3-tier / oracle variants,
//   Forecast-MPC (seasonal-naive forecasts + exact DP over the forecast),
//   tabular Q-learning, DQN with experience replay (Algorithm 1 literal),
//   and the A3C agent (the paper's MiniCost).

#include <iostream>

#include "common.hpp"
#include "core/forecast_policy.hpp"
#include "core/greedy.hpp"
#include "rl/dqn.hpp"
#include "rl/qlearn.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace minicost;

/// Adapters so the tabular/DQN agents run through the planner harness.
template <typename Agent>
class AgentPolicy final : public core::TieringPolicy {
 public:
  AgentPolicy(Agent& agent, std::string name, std::size_t min_history)
      : agent_(agent), name_(std::move(name)), min_history_(min_history) {}
  std::string name() const override { return name_; }
  core::Knowledge knowledge() const noexcept override {
    return core::Knowledge::kHistory;
  }
  pricing::StorageTier decide(const core::PlanContext& context,
                              trace::FileId file, std::size_t day,
                              pricing::StorageTier current) override {
    if (day < min_history_) return current;
    return pricing::tier_from_index(
        agent_.act(context.trace.file(file), day, current));
  }

 private:
  Agent& agent_;
  std::string name_;
  std::size_t min_history_;
};

}  // namespace

int main() {
  std::cout << "ablation_planner: every decision engine vs Optimal\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_FILES", 600));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices, /*window=*/35);
  const auto episodes =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_EPISODES", 35000));

  core::PlanOptions options;
  options.start_day = tr.days() - 35;
  options.initial_tiers =
      core::static_initial_tiers(tr, prices, options.start_day);

  util::Table table({"planner", "35d cost", "vs optimal", "prep+train s"});
  auto report = [&](core::TieringPolicy& policy, double train_seconds) {
    util::Stopwatch watch;
    const double cost = core::run_policy(tr, prices, policy, options)
                            .report.grand_total()
                            .total();
    table.add_row({policy.name(), util::format_money(cost),
                   util::format_double(cost / eval.optimal_cost(), 4),
                   util::format_double(train_seconds + watch.seconds(), 1)});
    std::cout << "  " << policy.name() << ": "
              << util::format_double(cost / eval.optimal_cost(), 4)
              << "x optimal\n";
  };

  {
    auto hot = core::make_hot_policy();
    report(*hot, 0.0);
    auto cold = core::make_cold_policy();
    report(*cold, 0.0);
  }
  {
    core::GreedyPolicy greedy;
    report(greedy, 0.0);
    core::GreedyPolicy greedy3(/*include_archive=*/true);
    report(greedy3, 0.0);
    core::ClairvoyantGreedyPolicy oracle;
    report(oracle, 0.0);
  }
  {
    core::ForecastMpcPolicy mpc;
    report(mpc, 0.0);
  }
  {
    util::Stopwatch watch;
    rl::QLearnConfig config;
    rl::QLearningAgent tabular(config, workload.seed);
    tabular.train(tr, prices, episodes / 4);
    AgentPolicy<rl::QLearningAgent> policy(tabular, "Q-table", 8);
    report(policy, watch.seconds());
  }
  {
    util::Stopwatch watch;
    rl::DqnConfig config;
    rl::DqnAgent dqn(config, workload.seed);
    dqn.train(tr, prices, episodes / 4);  // replay reuses samples 32x
    AgentPolicy<rl::DqnAgent> policy(
        dqn, "DQN+replay", dqn.featurizer().history_len());
    report(policy, watch.seconds());
  }
  {
    util::Stopwatch watch;
    rl::A3CConfig config;
    rl::A3CAgent a3c(config, workload.seed);
    rl::TrainOptions train;
    train.episodes = episodes;
    train.report_every = episodes;
    a3c.train(tr, prices, train);
    core::RlPolicy policy(a3c);
    report(policy, watch.seconds());
  }
  {
    core::OptimalPolicy optimal;
    report(optimal, 0.0);
  }

  benchx::emit("ablation_planner", "Planner-family comparison", table);
  benchx::expectation(
      "Optimal = 1.0 by definition; MiniCost (A3C) beats every greedy "
      "variant. Notably, Forecast-MPC — a predict-then-optimize baseline "
      "the paper never evaluates — is near-optimal here: the workload's "
      "weekly cycle makes most files forecastable (its edge shrinks "
      "exactly where Fig. 4 says forecasts fail). DQN trails at equal "
      "wall-clock budget (replay updates are ~30x costlier per episode).");
  return 0;
}
