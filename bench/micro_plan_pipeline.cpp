// Plan-pipeline throughput: serial shard loop vs pipelined (prefetching)
// driver vs incremental dirty-shard re-planning, over one .mct store.
//
// One size per run: MINICOST_SCALE files (default 100k; the CI perf gate
// runs 20k, the EXPERIMENTS.md Fig. 12 follow-up runs 1M). The store is
// split into ~16 shards (shard_files = max(4096, files/16)) and planned
// with Greedy three ways:
//   * serial      PlanDriver{pipeline=false}.run() — the reference loop
//   * pipelined   PlanDriver{pipeline=true}.run() — ShardPrefetcher overlaps
//                 shard N+1's materialization with shard N's decide/bill
//   * replan      one shard marked dirty, then replan() — the other shards
//                 are spliced from the cached per-shard bills
// plus a monolithic run_policy cross-check at <= 100k files (materializing
// the whole trace at 1M is exactly what the driver exists to avoid).
//
// All three bills must match bit for bit (bills_identical == 1). The gated
// headline is incremental_speedup = serial wall / replan wall, which holds
// on any core count; pipelined_speedup needs a second hardware thread to
// rise above 1.0 and is informational on 1-core runners.
//
// Output: one JSON object on stdout, mirrored to
// bench_out()/micro_plan_pipeline_raw.json; the schema-versioned run report
// for the CI perf gate goes to bench_out()/micro_plan_pipeline.json.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/plan_driver.hpp"
#include "store/trace_reader.hpp"
#include "store/trace_writer.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace minicost;

bool same_bill(const sim::BillingReport& a, const sim::BillingReport& b) {
  return a.per_file_totals() == b.per_file_totals() &&
         a.tier_changes() == b.tier_changes() &&
         a.grand_total().total() == b.grand_total().total();
}

}  // namespace

int main() {
  const std::size_t days = 62;
  const auto files = static_cast<std::size_t>(util::bench_scale(100'000));
  const std::size_t shard_files =
      std::max<std::size_t>(4096, files / 16);

  trace::SyntheticConfig config;
  config.file_count = files;
  config.days = days;
  config.seed = util::bench_seed();
  config.grouped_file_fraction = 0.0;  // streamable

  const std::filesystem::path dir = benchx::bench_out();
  const std::filesystem::path mct = dir / "micro_plan_pipeline.mct";
  {
    store::TraceWriter writer(mct, days);
    constexpr std::size_t kChunk = 16384;
    for (std::size_t first = 0; first < files; first += kChunk) {
      const std::size_t count = std::min(kChunk, files - first);
      for (const trace::FileRecord& f :
           trace::generate_synthetic_files(config, first, count))
        writer.add_file(f.name, f.size_gb, f.reads, f.writes);
    }
    writer.finish();
  }

  const store::TraceReader reader(mct);
  const pricing::PricingPolicy prices = benchx::standard_pricing();

  core::PlanDriverOptions options;
  options.shard_files = shard_files;
  options.start_day = days > 35 ? days - 35 : 1;

  core::GreedyPolicy policy;

  // Serial reference loop.
  options.pipeline = false;
  core::PlanDriver serial_driver(reader, prices, policy, options);
  const core::PlanDriverRun serial = serial_driver.run();

  // Pipelined: same partition, shard N+1 materializes while N is planned.
  options.pipeline = true;
  core::PlanDriver pipelined_driver(reader, prices, policy, options);
  const core::PlanDriverRun pipelined = pipelined_driver.run();

  // Incremental: dirty one mid-partition shard, splice the rest.
  pipelined_driver.mark_dirty(shard_files * (serial.shard_count / 2), 1);
  const core::PlanDriverRun replan = pipelined_driver.replan();

  bool identical =
      same_bill(serial.report, pipelined.report) &&
      same_bill(serial.report, replan.report);

  // Monolithic cross-check (loads the full trace into memory — skip at 1M).
  if (files <= 100'000) {
    core::PlanOptions mono;
    mono.start_day = options.start_day;
    const trace::RequestTrace tr = reader.materialize();
    mono.initial_tiers = core::static_initial_tiers(tr, prices, mono.start_day);
    core::GreedyPolicy fresh;
    identical = identical &&
                same_bill(core::run_policy(tr, prices, fresh, mono).report,
                          serial.report);
  }

  const double pipelined_speedup =
      serial.wall_seconds / pipelined.wall_seconds;
  const double incremental_speedup = serial.wall_seconds / replan.wall_seconds;

  const std::vector<std::pair<std::string, double>> metrics{
      {"serial_wall_seconds", serial.wall_seconds},
      {"pipelined_wall_seconds", pipelined.wall_seconds},
      {"replan_wall_seconds", replan.wall_seconds},
      {"pipelined_speedup", pipelined_speedup},
      {"incremental_speedup", incremental_speedup},
      {"decide_sum_seconds", serial.decision_seconds},
      {"file_decide_p50_ns", serial.file_decide_p50_ns},
      {"file_decide_p99_ns", serial.file_decide_p99_ns},
      {"bills_identical", identical ? 1.0 : 0.0},
  };

  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"micro_plan_pipeline\",\"files\":%zu,\"days\":%zu,"
      "\"shard_files\":%zu,\"shards\":%zu,\"serial_wall_seconds\":%.4f,"
      "\"pipelined_wall_seconds\":%.4f,\"replan_wall_seconds\":%.4f,"
      "\"pipelined_speedup\":%.2f,\"incremental_speedup\":%.2f,"
      "\"decide_sum_seconds\":%.4f,\"file_decide_p50_ns\":%.1f,"
      "\"file_decide_p99_ns\":%.1f,\"bills_identical\":%s}",
      files, days, shard_files, serial.shard_count, serial.wall_seconds,
      pipelined.wall_seconds, replan.wall_seconds, pipelined_speedup,
      incremental_speedup, serial.decision_seconds, serial.file_decide_p50_ns,
      serial.file_decide_p99_ns, identical ? "true" : "false");

  std::printf("%s\n", buf);
  std::ofstream(dir / "micro_plan_pipeline_raw.json") << buf << "\n";
  benchx::write_run_report("micro_plan_pipeline", metrics);

  std::filesystem::remove(mct);
  return identical ? 0 : 1;
}
