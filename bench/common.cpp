#include "common.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/run_report.hpp"
#include "trace/synthetic.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace minicost::benchx {

Workload standard_workload(double grouped_fraction) {
  trace::SyntheticConfig config;
  config.file_count = static_cast<std::size_t>(util::bench_scale(6000));
  config.seed = util::bench_seed();
  config.grouped_file_fraction = grouped_fraction;
  Workload workload;
  workload.seed = config.seed;
  workload.full = trace::generate_synthetic(config);
  auto [train, test] = workload.full.split(0.8, config.seed);
  workload.train = std::move(train);
  workload.test = std::move(test);
  return workload;
}

pricing::PricingPolicy standard_pricing() {
  return pricing::PricingPolicy::azure_2020();
}

std::size_t eval_start(const trace::RequestTrace& trace) {
  return trace.days() > 35 ? trace.days() - 35 : 1;
}

std::filesystem::path bench_out() {
  const std::filesystem::path dir = util::env_str("MINICOST_OUT", "bench_out");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

std::unique_ptr<rl::A3CAgent> shared_agent(const Workload& workload,
                                           std::size_t episodes,
                                           const pricing::PricingPolicy* pricing,
                                           const std::string& tag) {
  if (episodes == 0)
    episodes = static_cast<std::size_t>(util::env_int("MINICOST_EPISODES", 120000));
  const pricing::PricingPolicy prices =
      pricing != nullptr ? *pricing : standard_pricing();

  rl::A3CConfig config;  // library defaults = the validated setup
  auto agent = std::make_unique<rl::A3CAgent>(config, workload.seed);

  std::ostringstream key;
  key << "agent_s" << workload.seed << "_n" << workload.full.file_count()
      << "_e" << episodes << "_w" << config.filters << "x" << config.hidden;
  if (!tag.empty()) key << "_" << tag;
  key << ".ckpt";
  const std::filesystem::path checkpoint = bench_out() / key.str();

  if (std::filesystem::exists(checkpoint)) {
    std::cout << "[agent] loading cached checkpoint " << checkpoint << "\n";
    agent->load(checkpoint);
    return agent;
  }

  std::cout << "[agent] training " << episodes << " episodes on "
            << workload.train.file_count() << " files (cached afterwards)\n";
  util::Stopwatch watch;
  rl::TrainOptions options;
  options.episodes = episodes;
  options.report_every = std::max<std::size_t>(1, episodes / 5);
  options.on_progress = [&](const rl::TrainProgress& progress) {
    std::cout << "[agent]   episodes=" << progress.episodes_done
              << " mean reward=" << util::format_double(progress.mean_reward, 3)
              << " (" << util::format_double(watch.seconds(), 0) << "s)\n";
  };
  agent->train(workload.train, prices, options);
  agent->save(checkpoint);
  std::cout << "[agent] trained in " << util::format_double(watch.seconds(), 1)
            << "s; checkpoint: " << checkpoint << "\n";
  return agent;
}

void emit(const std::string& name, const std::string& banner,
          const util::Table& table) {
  std::cout << "\n=== " << banner << " ===\n" << table.to_string();
  // Mirror to CSV: one row per table row, raw cell text.
  const std::filesystem::path path = bench_out() / (name + ".csv");
  std::ofstream out(path);
  if (out) out << table.to_string();
  std::cout << "[csv] " << path << "\n";
  write_run_report(name);
}

std::filesystem::path write_run_report(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  obs::RunReport report = obs::make_report(name);
  report.metrics.insert(report.metrics.end(), metrics.begin(), metrics.end());
  const std::filesystem::path path = obs::write_report(report, bench_out());
  std::cout << "[report] " << path.string() << "\n";
  return path;
}

void expectation(const std::string& text) {
  std::cout << "expected shape (paper): " << text << "\n";
}

SweepPool::SweepPool() {
  const long knob = util::env_int("MINICOST_SWEEP_POOL", 0);
  if (knob == 1) return;  // serial reference path
  if (knob > 1) {
    owned_ = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(knob));
    pool_ = owned_.get();
    return;
  }
  pool_ = &util::ThreadPool::shared();
}

RlEval::RlEval(trace::RequestTrace eval_trace, pricing::PricingPolicy pricing,
               std::size_t window)
    : trace_(std::move(eval_trace)), pricing_(std::move(pricing)) {
  options_.start_day = trace_.days() > window ? trace_.days() - window : 1;
  options_.initial_tiers =
      core::static_initial_tiers(trace_, pricing_, options_.start_day);
  core::OptimalPolicy optimal;
  core::PlanResult result = core::run_policy(trace_, pricing_, optimal, options_);
  optimal_cost_ = result.report.grand_total().total();
  optimal_plan_ = std::move(result.plan);
}

core::PlanResult RlEval::run(rl::A3CAgent& agent) const {
  core::RlPolicy policy(agent);
  return core::run_policy(trace_, pricing_, policy, options_);
}

double RlEval::action_rate(rl::A3CAgent& agent) const {
  return core::action_agreement(run(agent).plan, optimal_plan_);
}

double RlEval::cost(rl::A3CAgent& agent) const {
  return run(agent).report.grand_total().total();
}

}  // namespace minicost::benchx
