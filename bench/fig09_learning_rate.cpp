// Figure 9 — "The convergence speed for different learning rates": the
// number of training steps until the agent reproduces Optimal's decisions
// on a fixed 14-day evaluation window, swept over the learning rate.
//
// The paper sweeps RMSProp rates 0.0001..0.0055 (best ~0.0028, U-shaped).
// This library's validated optimizer is SGD+momentum, whose useful range is
// shifted (~0.001..0.04); the sweep covers it and the same U-shape appears:
// too small = slow accumulation, too large = the policy zig-zags/saturates.
// Set MINICOST_FIG9_RMSPROP=1 to sweep the paper's optimizer instead.

#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "core/sweep_runner.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig09: steps to convergence vs learning rate (Figure 9)\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG9_FILES", 500));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);

  const bool rmsprop = util::env_int("MINICOST_FIG9_RMSPROP", 0) != 0;
  const std::vector<double> rates =
      rmsprop ? std::vector<double>{1e-4, 4e-4, 1e-3, 2e-3, 2.8e-3, 4e-3, 5.5e-3}
              : std::vector<double>{1e-4, 3e-4, 1e-3, 3e-3, 6e-3, 1.5e-2, 4e-2};
  const auto max_episodes =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG9_EPISODES", 30000));
  const std::size_t eval_every = std::max<std::size_t>(1, max_episodes / 30);
  // Converged = within 5% of the best rate any configuration reaches. A
  // first pass measures the ceiling; using a fixed fraction keeps the
  // criterion scale-free.
  const double target_fraction = 0.95;

  struct Outcome {
    double rate = 0.0;
    double final_rate = 0.0;
    std::vector<std::pair<std::size_t, double>> curve;  // (steps, action rate)
  };

  // One independent agent per learning rate, farmed across the sweep pool
  // (MINICOST_SWEEP_POOL; per-point results and CSV are pool-size
  // independent). Every point trains from the same workload seed so the
  // learning rate is the only variable.
  benchx::SweepPool sweep_pool;
  core::SweepRunner runner(workload.seed, sweep_pool.get());
  std::cout << "  sweep farm: " << rates.size() << " points on "
            << sweep_pool.size() << " pool thread(s)\n";
  const std::vector<Outcome> outcomes = runner.run<Outcome>(
      rates.size(), [&](core::SweepPointContext& ctx) {
        const double lr = rates[ctx.index];
        rl::A3CConfig config;
        if (rmsprop) config.optimizer = rl::OptimizerKind::kRmsProp;
        config.learning_rate = lr;
        config.init_candidates = 1;  // raw training dynamics, no init racing
        rl::A3CAgent agent(config, workload.seed);

        Outcome outcome;
        outcome.rate = lr;
        rl::TrainOptions options;
        options.episodes = max_episodes;
        options.report_every = eval_every;
        options.on_progress = [&](const rl::TrainProgress& progress) {
          outcome.curve.emplace_back(progress.env_steps,
                                     eval.action_rate(agent));
        };
        util::Stopwatch watch;
        agent.train(tr, prices, options);
        outcome.final_rate = outcome.curve.back().second;
        ctx.log << "  lr=" << util::format_double(lr, 4)
                << " final action rate="
                << util::format_double(outcome.final_rate, 3) << " ("
                << util::format_double(watch.seconds(), 0) << "s)\n";
        return outcome;
      });
  double ceiling = 0.0;
  for (const Outcome& outcome : outcomes)
    ceiling = std::max(ceiling, outcome.final_rate);

  const double target = target_fraction * ceiling;
  util::Table table({"learning rate", "steps to converge", "final action rate"});
  for (const Outcome& outcome : outcomes) {
    std::size_t steps = 0;
    for (const auto& [env_steps, rate] : outcome.curve) {
      if (rate >= target) {
        steps = env_steps;
        break;
      }
    }
    table.add_row({util::format_double(outcome.rate, 4),
                   steps == 0 ? "not reached" : util::format_count(steps),
                   util::format_double(outcome.final_rate, 3)});
  }
  benchx::emit("fig09", "Figure 9: convergence speed vs learning rate", table);
  benchx::expectation(
      "U-shape: the step count falls toward a sweet-spot learning rate and "
      "rises again for larger rates (the paper's best was ~0.0028 for "
      "RMSProp); extreme rates may never reach the convergence target");
  return 0;
}
