// Figure 12 — "Overhead": the per-day computing cost of each online policy.
// The paper reports, at 4M-file scale, ~1 minute/day for Hot/Cold and
// 28-36 minutes/day for Greedy and MiniCost, with MiniCost's per-file
// decision under 1 ms. google-benchmark measures one full daily decision
// pass per policy here; the reported counters extrapolate to the paper's
// 4M files.

#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/greedy.hpp"
#include "core/rl_policy.hpp"

namespace {

using namespace minicost;

struct Fixture {
  Fixture()
      : workload(benchx::standard_workload()),
        prices(benchx::standard_pricing()),
        agent(benchx::shared_agent(workload, /*episodes=*/
                                   20000)),  // overhead needs a trained net,
                                             // not a converged one
        initial(core::static_initial_tiers(workload.test, prices, 27)),
        context{workload.test, prices, 27, workload.test.days(), initial} {}

  benchx::Workload workload;
  pricing::PricingPolicy prices;
  std::unique_ptr<rl::A3CAgent> agent;
  std::vector<pricing::StorageTier> initial;
  core::PlanContext context;
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void run_daily_pass(benchmark::State& state, core::TieringPolicy& policy) {
  Fixture& f = fixture();
  const std::size_t day = 30;
  policy.prepare(f.context);
  std::size_t files = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.workload.test.file_count(); ++i) {
      const auto id = static_cast<trace::FileId>(i);
      benchmark::DoNotOptimize(
          policy.decide(f.context, id, day, f.initial[i]));
    }
    files += f.workload.test.file_count();
  }
  // items_per_second = file decisions per second. Minutes per day at the
  // paper's 4M-file scale = 4e6 / items_per_second / 60 (tabulated in
  // EXPERIMENTS.md from this number).
  state.SetItemsProcessed(static_cast<std::int64_t>(files));
}

void BM_Fig12_Hot(benchmark::State& state) {
  auto policy = core::make_hot_policy();
  run_daily_pass(state, *policy);
}
BENCHMARK(BM_Fig12_Hot)->Unit(benchmark::kMillisecond);

void BM_Fig12_Cold(benchmark::State& state) {
  auto policy = core::make_cold_policy();
  run_daily_pass(state, *policy);
}
BENCHMARK(BM_Fig12_Cold)->Unit(benchmark::kMillisecond);

void BM_Fig12_Greedy(benchmark::State& state) {
  core::GreedyPolicy policy;
  run_daily_pass(state, policy);
}
BENCHMARK(BM_Fig12_Greedy)->Unit(benchmark::kMillisecond);

void BM_Fig12_MiniCost(benchmark::State& state) {
  core::RlPolicy policy(*fixture().agent);
  run_daily_pass(state, policy);
}
BENCHMARK(BM_Fig12_MiniCost)->Unit(benchmark::kMillisecond);

// The paper's "<1 ms per data file decision" claim, measured directly.
void BM_Fig12_MiniCostPerFileDecision(benchmark::State& state) {
  Fixture& f = fixture();
  core::RlPolicy policy(*f.agent);
  policy.prepare(f.context);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto id = static_cast<trace::FileId>(i % f.workload.test.file_count());
    benchmark::DoNotOptimize(policy.decide(f.context, id, 30, f.initial[id]));
    ++i;
  }
}
BENCHMARK(BM_Fig12_MiniCostPerFileDecision)->Unit(benchmark::kMicrosecond);

}  // namespace
