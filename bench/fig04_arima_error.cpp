// Figure 4 — "Distribution of request frequency prediction errors":
// fit ARIMA on the first ~8 weeks of each file's daily read series, predict
// the next 7 days, and report the 1st / 50th / 99th percentile of
// (true - predicted) / true per variability bucket.

#include <iostream>

#include "common.hpp"
#include "forecast/evaluate.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig04: ARIMA 7-day prediction errors (Figure 4)\n";
  const benchx::Workload workload = benchx::standard_workload();

  forecast::BacktestConfig config;
  config.train_days = workload.full.days() - 7;  // "first two months"
  config.horizon = 7;                            // "next 7 days"
  const forecast::BacktestResult result =
      forecast::backtest(workload.full, config);

  util::Table table({"bucket", "files", "p1", "median", "p99", "mean |err|"});
  for (const auto& bucket : result.summary) {
    table.add_row({bucket.label, util::format_count(bucket.files),
                   util::format_double(bucket.p1, 3),
                   util::format_double(bucket.p50, 3),
                   util::format_double(bucket.p99, 3),
                   util::format_double(bucket.mean_abs, 3)});
  }
  benchx::emit("fig04", "Figure 4: ARIMA relative prediction errors", table);
  benchx::expectation(
      "error percentiles widen monotonically with the variability bucket — "
      "flash-crowd files are the hardest to predict (and, per Figure 3, the "
      "most valuable to re-tier)");
  return 0;
}
