// Figure 2 — "Distribution of daily request frequency standard deviations":
// the histogram of per-file variability over the paper's five buckets.
// The synthetic generator is calibrated against the paper's shares
// (81.75 / 9.93 / 5.39 / 2.3 / 0.63 %); this bench verifies the calibration
// on the generated trace.

#include <iostream>

#include "common.hpp"
#include "stats/histogram.hpp"
#include "trace/analysis.hpp"

int main() {
  using namespace minicost;
  std::cout << "fig02: variability histogram (paper Figure 2)\n";
  const benchx::Workload workload = benchx::standard_workload();

  const trace::VariabilityAnalysis analysis =
      trace::analyze_variability(workload.full);
  const auto paper = stats::paper_fig2_shares();

  util::Table table(
      {"bucket", "files", "measured share", "paper share", "abs diff"});
  for (std::size_t b = 0; b < analysis.histogram.bucket_count(); ++b) {
    const double share = analysis.histogram.share(b);
    table.add_row({analysis.histogram.label(b),
                   util::format_count(analysis.histogram.count(b)),
                   util::format_double(100.0 * share, 2) + "%",
                   util::format_double(100.0 * paper[b], 2) + "%",
                   util::format_double(100.0 * std::abs(share - paper[b]), 2)});
  }
  benchx::emit("fig02", "Figure 2: files per std-dev bucket", table);
  benchx::expectation(
      "bucket 0-0.1 dominates (~82%); counts fall monotonically toward >0.8 "
      "(~0.6%), matching the paper within a few percent per bucket");
  return 0;
}
