// Ablation — reward shaping (DESIGN.md design-choice list): compares the
// three reward formulations of rl/mdp.hpp on identical training budgets:
//   * Eq. (4) literal  (α / C + Δ with fixed α),
//   * Eq. (4) relative (α·C_hot / C + Δ — the default; optimal-policy
//     preserving, O(1) rewards per state),
//   * negative cost    (-C / scale, exactly cost-aligned).
// Reports each agent's final eval cost vs Optimal and its action rate.

#include <iostream>

#include "common.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"

int main() {
  using namespace minicost;
  std::cout << "ablation_reward: reward-shaping comparison (Eq. 4 variants)\n";

  trace::SyntheticConfig workload;
  workload.file_count =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_FILES", 600));
  workload.seed = util::bench_seed();
  const trace::RequestTrace tr = trace::generate_synthetic(workload);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const benchx::RlEval eval(tr, prices);
  const auto episodes =
      static_cast<std::size_t>(util::env_int("MINICOST_ABL_EPISODES", 35000));

  struct Variant {
    std::string name;
    rl::RewardConfig reward;
  };
  std::vector<Variant> variants;
  {
    rl::RewardConfig literal;
    literal.mode = rl::RewardMode::kInverseAbsolute;
    literal.alpha = 1e-5;
    literal.delta = 0.0;
    variants.push_back({"Eq.4 literal (alpha/C)", literal});

    rl::RewardConfig relative;  // library default
    variants.push_back({"Eq.4 relative (default)", relative});

    rl::RewardConfig negative;
    negative.mode = rl::RewardMode::kNegativeCost;
    negative.delta = 0.0;
    variants.push_back({"negative cost", negative});
  }

  util::Table table({"reward", "eval cost", "vs optimal", "action rate"});
  for (const Variant& variant : variants) {
    rl::A3CConfig config;
    config.reward = variant.reward;
    rl::A3CAgent agent(config, workload.seed);
    rl::TrainOptions options;
    options.episodes = episodes;
    options.report_every = episodes;
    agent.train(tr, prices, options);
    const double cost = eval.cost(agent);
    table.add_row({variant.name, util::format_money(cost),
                   util::format_double(cost / eval.optimal_cost(), 4),
                   util::format_double(eval.action_rate(agent), 3)});
    std::cout << "  " << variant.name << ": "
              << util::format_double(cost / eval.optimal_cost(), 4)
              << "x optimal\n";
  }
  benchx::emit("ablation_reward", "Reward shaping ablation", table);
  benchx::expectation(
      "the literal Eq. (4) reward lets near-free files dominate the "
      "gradient (cost ratios spanning 5 orders of magnitude); the "
      "baseline-relative form trains markedly closer to Optimal");
  return 0;
}
