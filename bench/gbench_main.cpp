// Drop-in replacement for benchmark::benchmark_main that also leaves the
// machine-readable run report behind: after the benchmarks run, the process's
// obs counters/timers, env fingerprint, and peak RSS are written to
// MINICOST_OUT/<binary-name>.json (see src/obs/run_report.hpp), where the CI
// perf gate (tools/bench_diff.py) picks them up.

#include <filesystem>
#include <string>

#include <benchmark/benchmark.h>

#include "common.hpp"

int main(int argc, char** argv) {
  const std::string name =
      argc > 0 ? std::filesystem::path(argv[0]).stem().string() : "gbench";
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  minicost::benchx::write_run_report(name);
  return 0;
}
