// Figure 13 — "The performance with and without data file aggregation":
// cumulative cost vs days for Greedy, MiniCost, MiniCost w/E (the
// concurrent-request aggregation enhancement of Sec. 5.2) and Optimal.
//
// Evaluation uses a fresh-seed trace (held out by construction — the agent
// never saw it) rather than the 80/20 test split: random file splits shred
// co-request groups, and Figure 13 is about exactly those groups.
//
// The bench runs twice:
//   * with the literal 2020 price sheet ($ per 10,000 operations), where
//     Eq. (15)'s benefit condition essentially never holds — the honest
//     no-benefit result recorded in EXPERIMENTS.md;
//   * with per-operation-heavy prices (x500 on the op components), the
//     regime where the paper's visible w/E gap emerges. The agent for this
//     variant is trained on the op-heavy sheet too.

#include <iostream>

#include "common.hpp"
#include "core/aggregation.hpp"
#include "core/greedy.hpp"
#include "core/optimal.hpp"
#include "core/rl_policy.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"

namespace {

using namespace minicost;

void run_variant(const trace::RequestTrace& eval_trace, rl::A3CAgent& agent,
                 const pricing::PricingPolicy& prices,
                 const std::string& label) {
  const std::size_t start = benchx::eval_start(eval_trace);

  core::AggregationConfig agg_config;
  agg_config.top_psi =
      static_cast<std::size_t>(util::env_int("MINICOST_FIG13_PSI", 64));
  const auto evaluations =
      core::evaluate_groups(eval_trace, prices, agg_config, start);
  std::size_t selected = 0;
  for (const auto& eval : evaluations) selected += eval.selected;
  const trace::RequestTrace aggregated =
      core::apply_aggregation(eval_trace, evaluations);

  auto bill = [&](const trace::RequestTrace& tr, core::TieringPolicy& policy) {
    core::PlanOptions options;
    options.start_day = start;
    options.initial_tiers = core::static_initial_tiers(tr, prices, start);
    return core::run_policy(tr, prices, policy, options);
  };

  core::GreedyPolicy greedy;
  core::RlPolicy minicost(agent);
  core::RlPolicy minicost_e(agent);
  core::OptimalPolicy optimal;

  struct Series {
    std::string name;
    core::PlanResult result;
  };
  std::vector<Series> series;
  series.push_back({"Greedy", bill(eval_trace, greedy)});
  series.push_back({"MiniCost", bill(eval_trace, minicost)});
  series.push_back({"MiniCost w/E", bill(aggregated, minicost_e)});
  series.push_back({"Optimal", bill(eval_trace, optimal)});

  util::Table table({"policy", "7d", "14d", "21d", "28d", "35d", "35d vs opt"});
  const double optimal_total =
      series.back().result.report.grand_total().total();
  for (const Series& s : series) {
    std::vector<std::string> row{s.name};
    for (std::size_t day : {7u, 14u, 21u, 28u, 35u}) {
      const std::size_t index =
          std::min<std::size_t>(day, s.result.report.days()) - 1;
      row.push_back(
          util::format_money(s.result.report.cumulative_through(index)));
    }
    row.push_back(util::format_double(
        s.result.report.grand_total().total() / optimal_total, 4));
    table.add_row(std::move(row));
  }
  benchx::emit("fig13_" + label,
               "Figure 13 [" + prices.name() + "]: aggregated groups=" +
                   std::to_string(selected) + "/" +
                   std::to_string(eval_trace.groups().size()),
               table);
}

}  // namespace

int main() {
  using namespace minicost;
  std::cout << "fig13: MiniCost with/without data file aggregation "
               "(Figure 13)\n";
  const benchx::Workload workload = benchx::standard_workload(0.4);

  // Held-out evaluation trace with intact co-request groups.
  trace::SyntheticConfig eval_config;
  eval_config.file_count =
      std::max<std::size_t>(100, workload.full.file_count() / 5);
  eval_config.seed = workload.seed + 1;
  eval_config.grouped_file_fraction = 0.4;
  const trace::RequestTrace eval_trace = trace::generate_synthetic(eval_config);

  {
    auto agent = benchx::shared_agent(workload);
    run_variant(eval_trace, *agent, benchx::standard_pricing(), "list_prices");
  }
  {
    const pricing::PricingPolicy op_heavy =
        pricing::with_op_price_multiplier(benchx::standard_pricing(), 500.0);
    const auto episodes = static_cast<std::size_t>(
        util::env_int("MINICOST_FIG13_EPISODES", 40000));
    auto agent = benchx::shared_agent(workload, episodes, &op_heavy, "opx500");
    run_variant(eval_trace, *agent, op_heavy, "op_heavy");
  }
  benchx::expectation(
      "with list prices Eq. (15) selects ~no groups (aggregation can't beat "
      "the replica's storage bill) — documented deviation; with op-heavy "
      "prices MiniCost w/E lands below MiniCost and the gap grows with days, "
      "Greedy >= MiniCost > MiniCost w/E >= Optimal as in the paper");
  return 0;
}
