// Microbenchmarks for the forecasting substrate: ARIMA fit/predict at the
// Figure-4 workload shape, the auto-order search, and the baselines.

#include <benchmark/benchmark.h>

#include <cmath>

#include "forecast/arima.hpp"
#include "forecast/ewma.hpp"
#include "forecast/seasonal_naive.hpp"
#include "util/rng.hpp"

namespace {

using namespace minicost;

std::vector<double> series(std::size_t n) {
  util::Rng rng(5);
  std::vector<double> xs(n);
  double level = 10.0;
  for (std::size_t t = 0; t < n; ++t) {
    level = 0.9 * level + rng.normal(1.0, 0.4);
    xs[t] = std::max(0.0, level + 3.0 * std::sin(static_cast<double>(t) / 7.0));
  }
  return xs;
}

void BM_Arima_Fit(benchmark::State& state) {
  const auto xs = series(55);
  for (auto _ : state) {
    forecast::Arima model(forecast::ArimaOrder{
        static_cast<std::size_t>(state.range(0)), 1,
        static_cast<std::size_t>(state.range(1))});
    model.fit(xs);
    benchmark::DoNotOptimize(model.innovation_variance());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Arima_Fit)->Args({1, 0})->Args({2, 1})->Args({3, 2});

void BM_Arima_Forecast7(benchmark::State& state) {
  const auto xs = series(55);
  forecast::Arima model(forecast::ArimaOrder{2, 1, 1});
  model.fit(xs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forecast(7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Arima_Forecast7);

void BM_AutoArima(benchmark::State& state) {
  const auto xs = series(55);
  for (auto _ : state) {
    forecast::Arima model = forecast::auto_arima(xs);
    benchmark::DoNotOptimize(model.forecast(7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AutoArima)->Unit(benchmark::kMicrosecond);

void BM_Ewma_FitForecast(benchmark::State& state) {
  const auto xs = series(55);
  for (auto _ : state) {
    forecast::Ewma model(0.3);
    model.fit(xs);
    benchmark::DoNotOptimize(model.forecast(7));
  }
}
BENCHMARK(BM_Ewma_FitForecast);

void BM_SeasonalNaive_FitForecast(benchmark::State& state) {
  const auto xs = series(55);
  for (auto _ : state) {
    forecast::SeasonalNaive model(7);
    model.fit(xs);
    benchmark::DoNotOptimize(model.forecast(7));
  }
}
BENCHMARK(BM_SeasonalNaive_FitForecast);

}  // namespace
