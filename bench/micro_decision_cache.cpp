// Decision-cache throughput: the dedup-aware decision-reuse layer
// (DESIGN.md §15) vs the uncached act_batch reference, over the Fig. 2-
// shaped integral-counts workload where ~80% of files sit in the lowest
// variability bucket and their exact feature windows repeat massively.
//
// One size per run: MINICOST_SCALE files (default 100k; the CI perf gate
// runs 20k) x 62 days, planned over the last 35 days with a fresh
// deterministically-initialized MiniCost agent (training moves no bits that
// matter here — the cache contract is against whatever parameters are
// deployed). Three measurements:
//   * headline   PlanDriver cache-off vs cache-on over the full mixture:
//                files/s from decide time, hit rate, dedup ratio;
//   * buckets    the same cache-off/cache-on pair over the low
//                (0-0.1 std-dev), mid (0.1-0.3) and high (0.3+) bucket
//                sub-traces — speedup_low is the gated number (>= 1.5x);
//   * matrix     bills_identical cache-on vs cache-off across shard sizes
//                {1, 7, all} x pool sizes {1, 4} at reduced scale.
// Every bill must match bit for bit (bills_identical == 1): exact keys +
// deterministic network mean reuse can not move a single ULP.
//
// Output: one JSON object on stdout, mirrored to
// bench_out()/micro_decision_cache_raw.json; the schema-versioned run
// report for the CI perf gate goes to bench_out()/micro_decision_cache.json.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/decision_cache.hpp"
#include "core/plan_driver.hpp"
#include "core/rl_policy.hpp"
#include "rl/a3c.hpp"
#include "store/trace_reader.hpp"
#include "store/trace_writer.hpp"
#include "trace/analysis.hpp"
#include "trace/synthetic.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace minicost;

bool same_bill(const sim::BillingReport& a, const sim::BillingReport& b) {
  return a.per_file_totals() == b.per_file_totals() &&
         a.tier_changes() == b.tier_changes() &&
         a.grand_total().total() == b.grand_total().total();
}

void write_store(const std::filesystem::path& mct,
                 const trace::SyntheticConfig& config) {
  store::TraceWriter writer(mct, config.days);
  constexpr std::size_t kChunk = 16384;
  for (std::size_t first = 0; first < config.file_count; first += kChunk) {
    const std::size_t count = std::min(kChunk, config.file_count - first);
    for (const trace::FileRecord& f :
         trace::generate_synthetic_files(config, first, count))
      writer.add_file(f.name, f.size_gb, f.reads, f.writes);
  }
  writer.finish();
}

struct BucketResult {
  double speedup = 0.0;
  double hit_rate = 0.0;
  double dedup_ratio = 0.0;
  double files_per_sec = 0.0;  ///< decided file-days per second, cache on
  bool identical = true;
};

/// Cache-off vs cache-on run_policy over one bucket's sub-trace.
BucketResult run_bucket(const trace::RequestTrace& full,
                        const std::vector<trace::FileId>& members,
                        const pricing::PricingPolicy& prices,
                        core::RlPolicy& policy, std::size_t start_day) {
  BucketResult result;
  if (members.empty()) return result;
  std::vector<trace::FileRecord> files;
  files.reserve(members.size());
  for (const trace::FileId id : members) files.push_back(full.file(id));
  const trace::RequestTrace sub(full.days(), std::move(files));

  core::PlanOptions options;
  options.start_day = start_day;
  const core::PlanResult off = core::run_policy(sub, prices, policy, options);

  core::DecisionCache cache;
  options.decision_cache = &cache;
  const core::PlanResult on = core::run_policy(sub, prices, policy, options);

  const core::DecisionCacheStats stats = cache.stats();
  const double window = static_cast<double>(sub.days() - start_day);
  result.speedup = on.decision_seconds > 0.0
                       ? off.decision_seconds / on.decision_seconds
                       : 0.0;
  result.hit_rate = stats.hit_rate();
  result.dedup_ratio = stats.dedup_ratio();
  result.files_per_sec =
      on.decision_seconds > 0.0
          ? static_cast<double>(sub.file_count()) * window / on.decision_seconds
          : 0.0;
  result.identical = same_bill(off.report, on.report);
  return result;
}

}  // namespace

int main() {
  const std::size_t days = 62;
  const auto files = static_cast<std::size_t>(util::bench_scale(100'000));

  trace::SyntheticConfig config;
  config.file_count = files;
  config.days = days;
  config.seed = util::bench_seed();
  config.grouped_file_fraction = 0.0;  // streamable
  config.integral_counts = true;       // Fig. 2-shaped repetitive windows

  const std::filesystem::path dir = benchx::bench_out();
  const std::filesystem::path mct = dir / "micro_decision_cache.mct";
  write_store(mct, config);

  const store::TraceReader reader(mct);
  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const std::size_t start_day = days > 35 ? days - 35 : 1;

  rl::A3CConfig agent_config;
  agent_config.workers = 1;  // decide-only deployment, no training here
  rl::A3CAgent agent(agent_config, 1234);
  core::RlPolicy policy(agent);

  core::PlanDriverOptions options;
  options.shard_files = std::max<std::size_t>(4096, files / 16);
  options.start_day = start_day;

  // Headline: the full Fig. 2 mixture through the PlanDriver.
  options.decision_cache = false;
  core::PlanDriver driver_off(reader, prices, policy, options);
  const core::PlanDriverRun off = driver_off.run();

  options.decision_cache = true;
  core::PlanDriver driver_on(reader, prices, policy, options);
  const core::PlanDriverRun on = driver_on.run();

  bool identical = same_bill(off.report, on.report);

  const double window = static_cast<double>(days - start_day);
  const double file_days = static_cast<double>(files) * window;
  const double files_per_sec_off =
      off.decision_seconds > 0.0 ? file_days / off.decision_seconds : 0.0;
  const double files_per_sec_on =
      on.decision_seconds > 0.0 ? file_days / on.decision_seconds : 0.0;
  const double speedup = on.decision_seconds > 0.0
                             ? off.decision_seconds / on.decision_seconds
                             : 0.0;
  const double hit_rate = on.cache_stats.hit_rate();
  const double dedup_ratio = on.cache_stats.dedup_ratio();

  // Per-bucket: low (0-0.1 std-dev) is the paper's ~80% bulk and the gated
  // workload; mid/high shrink the reuse pool and are informational.
  const trace::RequestTrace full = reader.materialize();
  const trace::VariabilityAnalysis analysis = trace::analyze_variability(full);
  std::vector<trace::FileId> low, mid, high;
  for (std::size_t b = 0; b < analysis.bucket_members.size(); ++b) {
    const std::vector<trace::FileId>& members = analysis.bucket_members[b];
    std::vector<trace::FileId>& group = b == 0 ? low : (b <= 2 ? mid : high);
    group.insert(group.end(), members.begin(), members.end());
  }
  const BucketResult low_r = run_bucket(full, low, prices, policy, start_day);
  const BucketResult mid_r = run_bucket(full, mid, prices, policy, start_day);
  const BucketResult high_r = run_bucket(full, high, prices, policy, start_day);
  identical = identical && low_r.identical && mid_r.identical &&
              high_r.identical;

  // bills_identical matrix at reduced scale: shard {1,7,all} x pool {1,4},
  // cache on vs off — every cell one bit-identical bill.
  const std::size_t matrix_files = std::min<std::size_t>(files, 800);
  trace::SyntheticConfig matrix_config = config;
  matrix_config.file_count = matrix_files;
  const std::filesystem::path matrix_mct = dir / "micro_decision_cache_m.mct";
  write_store(matrix_mct, matrix_config);
  {
    const store::TraceReader matrix_reader(matrix_mct);
    util::ThreadPool pool1(1), pool4(4);
    sim::BillingReport reference;
    bool have_reference = false;
    for (const std::size_t shard_files : {std::size_t{1}, std::size_t{7},
                                          std::size_t{0}}) {
      for (util::ThreadPool* pool : {&pool1, &pool4}) {
        for (const bool cached : {false, true}) {
          core::PlanDriverOptions cell = options;
          cell.shard_files = shard_files;
          cell.pool = pool;
          cell.decision_cache = cached;
          core::PlanDriver driver(matrix_reader, prices, policy, cell);
          core::PlanDriverRun run = driver.run();
          if (!have_reference) {
            reference = std::move(run.report);
            have_reference = true;
          } else {
            identical = identical && same_bill(reference, run.report);
          }
        }
      }
    }
  }

  const std::vector<std::pair<std::string, double>> metrics{
      {"files_per_sec_off", files_per_sec_off},
      {"files_per_sec_on", files_per_sec_on},
      {"speedup", speedup},
      {"hit_rate", hit_rate},
      {"dedup_ratio", dedup_ratio},
      {"speedup_low", low_r.speedup},
      {"hit_rate_low", low_r.hit_rate},
      {"dedup_ratio_low", low_r.dedup_ratio},
      {"files_per_sec_low", low_r.files_per_sec},
      {"speedup_mid", mid_r.speedup},
      {"hit_rate_mid", mid_r.hit_rate},
      {"dedup_ratio_mid", mid_r.dedup_ratio},
      {"speedup_high", high_r.speedup},
      {"hit_rate_high", high_r.hit_rate},
      {"dedup_ratio_high", high_r.dedup_ratio},
      {"decide_off_seconds", off.decision_seconds},
      {"decide_on_seconds", on.decision_seconds},
      {"cache_resident_mib",
       static_cast<double>(on.cache_stats.resident_bytes) / (1024.0 * 1024.0)},
      {"bills_identical", identical ? 1.0 : 0.0},
  };

  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"micro_decision_cache\",\"files\":%zu,\"days\":%zu,"
      "\"files_per_sec_off\":%.0f,\"files_per_sec_on\":%.0f,"
      "\"speedup\":%.2f,\"hit_rate\":%.4f,\"dedup_ratio\":%.2f,"
      "\"speedup_low\":%.2f,\"hit_rate_low\":%.4f,\"dedup_ratio_low\":%.2f,"
      "\"speedup_mid\":%.2f,\"hit_rate_mid\":%.4f,"
      "\"speedup_high\":%.2f,\"hit_rate_high\":%.4f,"
      "\"decide_off_seconds\":%.4f,\"decide_on_seconds\":%.4f,"
      "\"bills_identical\":%s}",
      files, days, files_per_sec_off, files_per_sec_on, speedup, hit_rate,
      dedup_ratio, low_r.speedup, low_r.hit_rate, low_r.dedup_ratio,
      mid_r.speedup, mid_r.hit_rate, high_r.speedup, high_r.hit_rate,
      off.decision_seconds, on.decision_seconds, identical ? "true" : "false");

  std::printf("%s\n", buf);
  std::ofstream(dir / "micro_decision_cache_raw.json") << buf << "\n";
  benchx::write_run_report("micro_decision_cache", metrics);

  std::filesystem::remove(mct);
  std::filesystem::remove(matrix_mct);
  return identical ? 0 : 1;
}
