// Trace I/O throughput: the CSV container vs the .mct out-of-core store,
// and shard-streamed vs monolithic evaluation on top of each.
//
// Per size (10k and 100k files by default; MINICOST_SCALE > 100000 adds an
// extra, e.g. MINICOST_SCALE=1000000 for the README's 1M-file run):
//   * pack: streaming-generate the workload into a .mct container
//   * csv_load: trace_io CSV parse (only measured up to 20k files — the
//     text container is quadratically painful, which is rather the point)
//   * container bytes: the binary .mct vs the raw CSV text for the same
//     trace (mct_mib / csv_mib / the compression-style ratio)
//   * mct_open_scan: mmap open + full checksum scan of every series byte
//   * materialize prefetch off/on: shard-at-a-time copy-out through a bare
//     loop vs store::ShardPrefetcher (overlap only helps with >1 hw thread)
//   * eval monolithic vs sharded: Greedy over the last 35 days, and a check
//     that the two bills match bit for bit
//   * codec dimension (first size only, integral-counts workload): for each
//     v2 chunk codec this build carries — raw, delta, and the zstd pair when
//     MINICOST_WITH_ZSTD — pack the same trace into a v2 container and
//     report its size, the compression ratio against the v1 container,
//     chunk-decode materialize throughput, and whether the sharded bill
//     over the v2 store is bit-identical to the v1 monolithic bill.
//
// Output: one JSON object on stdout, mirrored to
// bench_out()/micro_trace_io_raw.json; the schema-versioned run report for
// the CI perf gate goes to bench_out()/micro_trace_io.json.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "codec/chunk_codec.hpp"
#include "common.hpp"
#include "core/greedy.hpp"
#include "core/shard_eval.hpp"
#include "store/shard_prefetcher.hpp"
#include "store/trace_reader.hpp"
#include "store/trace_writer.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace minicost;

struct Row {
  std::size_t files = 0;
  double pack_seconds = 0.0;
  double csv_save_seconds = -1.0;  ///< < 0: not measured at this size
  double csv_load_seconds = -1.0;
  double mct_mib = 0.0;
  double csv_mib = -1.0;  ///< < 0: not measured at this size
  double open_scan_seconds = 0.0;
  double scan_gb = 0.0;
  double materialize_serial_seconds = 0.0;
  double materialize_prefetch_seconds = 0.0;
  double eval_mono_seconds = 0.0;
  double eval_shard_seconds = 0.0;
  std::size_t shard_files = 0;
  bool identical = false;
};

Row run_size(std::size_t files, std::size_t days,
             const std::filesystem::path& dir) {
  Row row;
  row.files = files;
  row.shard_files = 16384;

  trace::SyntheticConfig config;
  config.file_count = files;
  config.days = days;
  config.seed = util::bench_seed();
  config.grouped_file_fraction = 0.0;  // streamable

  const std::filesystem::path mct = dir / "micro_trace_io.mct";
  {
    util::Stopwatch watch;
    store::TraceWriter writer(mct, days);
    constexpr std::size_t kChunk = 16384;
    for (std::size_t first = 0; first < files; first += kChunk) {
      const std::size_t count = std::min(kChunk, files - first);
      for (const trace::FileRecord& f :
           trace::generate_synthetic_files(config, first, count))
        writer.add_file(f.name, f.size_gb, f.reads, f.writes);
    }
    writer.finish();
    row.pack_seconds = watch.seconds();
  }

  if (files <= 20'000) {
    const std::filesystem::path csv = dir / "micro_trace_io.csv";
    const trace::RequestTrace tr = store::TraceReader(mct).materialize();
    util::Stopwatch save;
    trace::save_trace(tr, csv);
    row.csv_save_seconds = save.seconds();
    util::Stopwatch load;
    const trace::RequestTrace back = trace::load_trace(csv);
    row.csv_load_seconds = load.seconds();
    row.csv_mib = static_cast<double>(std::filesystem::file_size(csv)) /
                  (1024.0 * 1024.0);
    std::filesystem::remove(csv);
  }
  row.mct_mib =
      static_cast<double>(std::filesystem::file_size(mct)) / (1024.0 * 1024.0);

  {
    util::Stopwatch watch;
    const store::TraceReader reader(mct);
    reader.verify_checksums();  // pages in and checksums every series byte
    row.open_scan_seconds = watch.seconds();
    row.scan_gb = static_cast<double>(reader.total_bytes()) / 1e9;
  }

  const store::TraceReader reader(mct);

  // Shard-at-a-time copy-out of the whole store, prefetcher off vs on. The
  // pages are released after each shard so both passes fault them back in.
  {
    util::Stopwatch watch;
    for (std::size_t first = 0; first < files; first += row.shard_files) {
      const std::size_t count = std::min(row.shard_files, files - first);
      const trace::RequestTrace shard = reader.materialize_shard(first, count);
      reader.release_frequency_range(first, count);
    }
    row.materialize_serial_seconds = watch.seconds();
  }
  {
    std::vector<store::ShardPrefetcher::Range> ranges;
    for (std::size_t first = 0; first < files; first += row.shard_files)
      ranges.push_back({first, std::min(row.shard_files, files - first)});
    util::Stopwatch watch;
    store::ShardPrefetcher prefetcher(reader, std::move(ranges));
    while (!prefetcher.done()) {
      const store::ShardPrefetcher::Shard shard = prefetcher.next();
      reader.release_frequency_range(shard.range.first, shard.range.count);
    }
    row.materialize_prefetch_seconds = watch.seconds();
  }

  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const std::size_t start = days > 35 ? days - 35 : 1;
  double mono_total = 0.0, shard_total = 0.0;
  {
    util::Stopwatch watch;
    const trace::RequestTrace tr = reader.materialize();
    core::GreedyPolicy policy;
    core::PlanOptions options;
    options.start_day = start;
    options.initial_tiers = core::static_initial_tiers(tr, prices, start);
    mono_total =
        core::run_policy(tr, prices, policy, options).report.grand_total().total();
    row.eval_mono_seconds = watch.seconds();
  }
  {
    util::Stopwatch watch;
    core::GreedyPolicy policy;
    core::ShardEvalOptions options;
    options.shard_files = row.shard_files;
    options.start_day = start;
    shard_total = core::run_policy_sharded(reader, prices, policy, options)
                      .report.grand_total()
                      .total();
    row.eval_shard_seconds = watch.seconds();
  }
  row.identical = mono_total == shard_total;

  std::filesystem::remove(mct);
  return row;
}

struct CodecRow {
  std::string name;            ///< "v1" or a v2 codec name
  double pack_seconds = 0.0;
  double mct_mib = 0.0;
  double ratio_vs_v1 = 1.0;    ///< v1 container bytes / this container bytes
  double materialize_seconds = 0.0;
  double materialize_gb_per_sec = 0.0;  ///< decoded bytes per second
  bool identical = false;      ///< sharded bill == v1 monolithic bill, bitwise
};

/// The codec dimension: same integral-counts workload (whole requests, the
/// data shape the delta codec exists for), one container per codec, all
/// billed against the v1 monolithic reference.
std::vector<CodecRow> run_codecs(std::size_t files, std::size_t days,
                                 const std::filesystem::path& dir) {
  trace::SyntheticConfig config;
  config.file_count = files;
  config.days = days;
  config.seed = util::bench_seed();
  config.grouped_file_fraction = 0.0;  // streamable
  config.integral_counts = true;

  constexpr std::size_t kGenChunk = 16384;
  constexpr std::size_t kShardFiles = 2048;
  const auto pack = [&](const std::filesystem::path& path,
                        const store::WriterOptions& options) {
    store::TraceWriter writer(path, days, options);
    for (std::size_t first = 0; first < files; first += kGenChunk) {
      const std::size_t count = std::min(kGenChunk, files - first);
      for (const trace::FileRecord& f :
           trace::generate_synthetic_files(config, first, count))
        writer.add_file(f.name, f.size_gb, f.reads, f.writes);
    }
    writer.finish();
  };

  const pricing::PricingPolicy prices = benchx::standard_pricing();
  const std::size_t start = days > 35 ? days - 35 : 1;
  const auto mib = [](const std::filesystem::path& p) {
    return static_cast<double>(std::filesystem::file_size(p)) /
           (1024.0 * 1024.0);
  };

  std::vector<CodecRow> rows;
  const std::filesystem::path mct = dir / "micro_trace_io_codec.mct";

  // v1 reference: container size and the monolithic bill every v2 container
  // must reproduce bit for bit.
  double v1_mib = 0.0;
  double v1_total = 0.0;
  {
    CodecRow row;
    row.name = "v1";
    util::Stopwatch watch;
    pack(mct, {});
    row.pack_seconds = watch.seconds();
    row.mct_mib = v1_mib = mib(mct);
    const store::TraceReader reader(mct);
    {
      util::Stopwatch mat;
      for (std::size_t first = 0; first < files; first += kShardFiles) {
        const std::size_t count = std::min(kShardFiles, files - first);
        (void)reader.materialize_shard(first, count);
        reader.release_frequency_range(first, count);
      }
      row.materialize_seconds = mat.seconds();
      row.materialize_gb_per_sec =
          static_cast<double>(reader.freq_raw_bytes()) / 1e9 /
          row.materialize_seconds;
    }
    const trace::RequestTrace tr = reader.materialize();
    core::GreedyPolicy policy;
    core::PlanOptions options;
    options.start_day = start;
    options.initial_tiers = core::static_initial_tiers(tr, prices, start);
    v1_total =
        core::run_policy(tr, prices, policy, options).report.grand_total().total();
    row.identical = true;
    rows.push_back(std::move(row));
  }

  std::vector<std::string> codecs{"raw", "delta"};
  if (codec::zstd_available()) {
    codecs.emplace_back("zstd");
    codecs.emplace_back("delta+zstd");
  }
  for (const std::string& name : codecs) {
    CodecRow row;
    row.name = name;
    util::Stopwatch watch;
    pack(mct, store::WriterOptions{name, 1024});
    row.pack_seconds = watch.seconds();
    row.mct_mib = mib(mct);
    row.ratio_vs_v1 = v1_mib / row.mct_mib;
    const store::TraceReader reader(mct);
    {
      util::Stopwatch mat;
      for (std::size_t first = 0; first < files; first += kShardFiles) {
        const std::size_t count = std::min(kShardFiles, files - first);
        (void)reader.materialize_shard(first, count);
      }
      row.materialize_seconds = mat.seconds();
      row.materialize_gb_per_sec =
          static_cast<double>(reader.freq_raw_bytes()) / 1e9 /
          row.materialize_seconds;
    }
    core::GreedyPolicy policy;
    core::ShardEvalOptions options;
    options.shard_files = kShardFiles;
    options.start_day = start;
    const double total = core::run_policy_sharded(reader, prices, policy, options)
                             .report.grand_total()
                             .total();
    row.identical = total == v1_total;
    rows.push_back(std::move(row));
  }
  std::filesystem::remove(mct);
  return rows;
}

}  // namespace

int main() {
  const std::size_t days = 62;
  std::vector<std::size_t> sizes{10'000, 100'000};
  const auto scale = static_cast<std::size_t>(util::bench_scale(0));
  if (scale > sizes.back()) sizes.push_back(scale);  // e.g. the 1M run

  const std::filesystem::path dir = benchx::bench_out();
  std::vector<std::pair<std::string, double>> metrics;
  std::ostringstream json;
  json << "{\"bench\":\"micro_trace_io\",\"days\":" << days << ",\"results\":[";
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Row row = run_size(sizes[i], days, dir);
    const std::string prefix = "n" + std::to_string(row.files) + ".";
    metrics.emplace_back(prefix + "pack_seconds", row.pack_seconds);
    metrics.emplace_back(prefix + "mct_open_scan_seconds",
                         row.open_scan_seconds);
    metrics.emplace_back(prefix + "mct_scan_gb_per_sec",
                         row.scan_gb / row.open_scan_seconds);
    metrics.emplace_back(prefix + "mct_mib", row.mct_mib);
    if (row.csv_mib >= 0.0)
      metrics.emplace_back(prefix + "csv_mib", row.csv_mib);
    metrics.emplace_back(prefix + "materialize_serial_seconds",
                         row.materialize_serial_seconds);
    metrics.emplace_back(prefix + "materialize_prefetch_seconds",
                         row.materialize_prefetch_seconds);
    metrics.emplace_back(prefix + "eval_monolithic_seconds",
                         row.eval_mono_seconds);
    metrics.emplace_back(prefix + "eval_sharded_seconds",
                         row.eval_shard_seconds);
    metrics.emplace_back(prefix + "bills_identical",
                         row.identical ? 1.0 : 0.0);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"files\":%zu,\"pack_seconds\":%.3f,\"csv_save_seconds\":%.3f,"
        "\"csv_load_seconds\":%.3f,\"mct_mib\":%.2f,\"csv_mib\":%.2f,"
        "\"mct_csv_ratio\":%.3f,\"mct_open_scan_seconds\":%.3f,"
        "\"mct_scan_gb_per_sec\":%.2f,\"materialize_serial_seconds\":%.3f,"
        "\"materialize_prefetch_seconds\":%.3f,"
        "\"eval_monolithic_seconds\":%.3f,"
        "\"eval_sharded_seconds\":%.3f,\"shard_files\":%zu,"
        "\"bills_identical\":%s}",
        i == 0 ? "" : ",", row.files, row.pack_seconds, row.csv_save_seconds,
        row.csv_load_seconds, row.mct_mib, row.csv_mib,
        row.csv_mib > 0.0 ? row.mct_mib / row.csv_mib : -1.0,
        row.open_scan_seconds, row.scan_gb / row.open_scan_seconds,
        row.materialize_serial_seconds, row.materialize_prefetch_seconds,
        row.eval_mono_seconds, row.eval_shard_seconds, row.shard_files,
        row.identical ? "true" : "false");
    json << buf;
  }
  json << "],\"codecs\":[";
  const std::vector<CodecRow> codec_rows = run_codecs(sizes.front(), days, dir);
  for (std::size_t i = 0; i < codec_rows.size(); ++i) {
    const CodecRow& row = codec_rows[i];
    const std::string prefix = "codec." + row.name + ".";
    metrics.emplace_back(prefix + "pack_seconds", row.pack_seconds);
    metrics.emplace_back(prefix + "mct_mib", row.mct_mib);
    metrics.emplace_back(prefix + "ratio_vs_v1", row.ratio_vs_v1);
    metrics.emplace_back(prefix + "materialize_seconds",
                         row.materialize_seconds);
    metrics.emplace_back(prefix + "materialize_gb_per_sec",
                         row.materialize_gb_per_sec);
    metrics.emplace_back(prefix + "bills_identical", row.identical ? 1.0 : 0.0);
    char buf[384];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"codec\":\"%s\",\"pack_seconds\":%.3f,\"mct_mib\":%.2f,"
        "\"ratio_vs_v1\":%.3f,\"materialize_seconds\":%.3f,"
        "\"materialize_gb_per_sec\":%.2f,\"bills_identical\":%s}",
        i == 0 ? "" : ",", row.name.c_str(), row.pack_seconds, row.mct_mib,
        row.ratio_vs_v1, row.materialize_seconds, row.materialize_gb_per_sec,
        row.identical ? "true" : "false");
    json << buf;
  }
  json << "]}";

  std::printf("%s\n", json.str().c_str());
  std::ofstream(dir / "micro_trace_io_raw.json") << json.str() << "\n";
  benchx::write_run_report("micro_trace_io", metrics);
  return 0;
}
