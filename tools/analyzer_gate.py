#!/usr/bin/env python3
"""Diff compiler-analyzer output against a committed triaged baseline.

Both analyzer jobs in CI (gcc `-fanalyzer`, clang `scan-build`) are noisy on
C++ — known false positives live in a baseline file so the signal is *new*
findings: the gate fails the build when a (file, checker) pair appears that
the baseline does not cover, or appears more often than it did when triaged.

Baseline format (one finding class per line, tab-separated):

    <relative path>\t<checker id>\t<count>

Lines starting with `#` are comments. Counts — not line numbers — are the
matching key: analyzer line numbers drift with every edit, but a *new* use
of an uninitialized value in a file raises that file's count and trips the
gate. Stale entries (triaged findings the analyzer no longer reports) are
reported as warnings so the baseline shrinks over time; `--update` rewrites
the baseline from the current log once the new findings are triaged.

Usage:
    g++ -fanalyzer ... 2> build.log   (or: scan-build ... 2> build.log)
    analyzer_gate.py --log build.log --baseline gcc-fanalyzer.txt [--update]

Exit codes: 0 clean (stale entries allowed), 1 new findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import collections
import pathlib
import re
import sys

# gcc:   path:line:col: warning: text [CWE-457] [-Wanalyzer-use-of-uninitialized-value]
# clang: path:line:col: warning: text [core.NullDereference]
FINDING_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+):\s+warning:\s+"
    r"(?P<text>.*?)\s*\[(?P<checker>-Wanalyzer-[\w-]+|[a-zA-Z_][\w.-]*)\]\s*$"
)


def parse_log(lines, root: pathlib.Path):
    """Returns ({(path, checker): count}, [raw finding lines])."""
    counts = collections.Counter()
    raw = collections.defaultdict(list)
    for line in lines:
        match = FINDING_RE.match(line.rstrip("\n"))
        if not match:
            continue
        checker = match.group("checker")
        if not (checker.startswith("-Wanalyzer-") or "." in checker):
            continue  # an ordinary -Wfoo compiler warning, not an analyzer
        path = pathlib.Path(match.group("path"))
        if path.is_absolute():
            try:
                path = path.relative_to(root.resolve())
            except ValueError:
                pass  # system header or out-of-tree: keep as-is
        key = (path.as_posix(), checker)
        counts[key] += 1
        raw[key].append(line.rstrip("\n"))
    return counts, raw


def read_baseline(path: pathlib.Path):
    counts = collections.Counter()
    if not path.exists():
        return counts
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split("\t")
        if len(parts) != 3 or not parts[2].isdigit():
            raise SystemExit(
                f"{path}:{lineno}: malformed baseline line (want "
                f"path<TAB>checker<TAB>count): {text!r}"
            )
        counts[(parts[0], parts[1])] += int(parts[2])
    return counts


def write_baseline(path: pathlib.Path, counts) -> None:
    lines = [
        "# Triaged analyzer findings: path<TAB>checker<TAB>count.",
        "# Regenerate with tools/analyzer_gate.py --update after triaging;",
        "# see DESIGN.md section 12 for the workflow.",
    ]
    for (rel, checker), count in sorted(counts.items()):
        lines.append(f"{rel}\t{checker}\t{count}")
    path.write_text("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--log", required=True,
                        help="build log containing analyzer diagnostics"
                             " (- for stdin)")
    parser.add_argument("--baseline", required=True,
                        help="triaged-findings baseline file")
    parser.add_argument("--root", default=".",
                        help="repo root for path normalization")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the log and exit 0")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    if args.log == "-":
        lines = sys.stdin.readlines()
    else:
        log = pathlib.Path(args.log)
        if not log.exists():
            print(f"analyzer_gate: no such log: {log}", file=sys.stderr)
            return 2
        lines = log.read_text(errors="replace").splitlines()

    counts, raw = parse_log(lines, root)
    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        write_baseline(baseline_path, counts)
        print(f"analyzer_gate: wrote {len(counts)} finding classes to "
              f"{baseline_path}")
        return 0

    baseline = read_baseline(baseline_path)
    new = {k: c - baseline.get(k, 0) for k, c in counts.items()
           if c > baseline.get(k, 0)}
    stale = {k: c for k, c in baseline.items() if counts.get(k, 0) < c}

    for (rel, checker), excess in sorted(stale.items()):
        print(f"analyzer_gate: stale baseline entry (analyzer no longer "
              f"reports it here): {rel} [{checker}]", file=sys.stderr)
    if new:
        print(f"analyzer_gate: {sum(new.values())} NEW analyzer finding(s) "
              f"not covered by {baseline_path}:", file=sys.stderr)
        for key in sorted(new):
            for line in raw[key][: new[key]]:
                print(f"  {line}", file=sys.stderr)
        print("analyzer_gate: triage each finding; fix real bugs, then "
              "refresh the baseline with --update for the false positives.",
              file=sys.stderr)
        return 1
    print(f"analyzer_gate: clean ({sum(counts.values())} known finding(s), "
          f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
