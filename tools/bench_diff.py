#!/usr/bin/env python3
"""Compare two MiniCost run reports and fail on performance regressions.

Input: two schema-versioned JSON run reports (src/obs/run_report.hpp) —
a committed baseline and a freshly produced report. The comparison is
metric-by-metric with per-metric noise thresholds; the exit code is what CI
gates on.

    bench_diff.py baseline.json current.json [--threshold PCT]
                  [--threshold-for NAME=PCT ...] [--min-seconds S]
                  [--summary-md PATH] [--fail-on-counter-change]

Improvement direction is inferred from the metric name:
  * ``*_per_sec``, ``*speedup``,
    ``*_rate``, ``*_ratio``         — higher is better (hit rates, dedup
    and compression ratios: shrinking reuse or compressibility at fixed
    seed/scale is a real regression, not jitter)
  * ``*_sum_seconds``               — informational: summed per-shard CPU
    time is not a wall-clock signal when shard I/O overlaps planning (the
    pipelined driver can raise the sum while lowering the wall)
  * ``*_seconds``, ``*_ns``,
    ``*_mib``, ``*_bytes``          — lower is better
  * anything else                   — informational (never fails the gate)

Percentile metrics (``*_p50_ns``, ``*_p99_ns``) gate like any other ``_ns``
metric, but per-file decision latencies are nanoseconds-scale, so in
practice the ``--min-seconds`` noise floor reports them informationally.

Timers from the obs registry are compared on mean nanoseconds per event
(lower is better). Any time-valued pair where BOTH sides are under
``--min-seconds`` is treated as noise and reported informationally: micro
timings jitter wildly on shared CI runners.

Counters are informational by default (they describe work volume, not
speed); ``--fail-on-counter-change`` makes any drift a failure, which pins
"instrumented work volume is deterministic" in CI.

Environment fingerprints are compared on every field except the git SHA
(reports are compared *across* commits). A mismatch downgrades the whole
comparison to informational-with-warning rather than failing: a baseline
from a different machine proves nothing either way.

Exit codes: 0 = no regression, 1 = regression, 2 = usage/schema error.
Stdlib only; unit-tested by tests/tools/bench_diff_test.py.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1

HIGHER_BETTER_SUFFIXES = ("_per_sec", "per_sec", "speedup", "_rate", "_ratio")
LOWER_BETTER_SUFFIXES = ("_seconds", "_ns", "_mib", "_bytes")
# Checked before LOWER_BETTER: a summed-over-shards CPU time legitimately
# grows when overlap shortens the wall clock.
INFORMATIONAL_SUFFIXES = ("_sum_seconds",)

# Fingerprint fields that must agree for a comparison to be meaningful.
# git_sha is deliberately absent: the entire point is cross-commit diffs.
COMPARABLE_ENV_FIELDS = (
    "cpu",
    "compiler",
    "build_type",
    "sanitize",
    "seed",
    "scale",
    "threads",
)


def direction(name: str) -> str:
    """'higher', 'lower', or 'info' for a metric name."""
    lowered = name.lower()
    if lowered.endswith(HIGHER_BETTER_SUFFIXES):
        return "higher"
    if lowered.endswith(INFORMATIONAL_SUFFIXES):
        return "info"
    if lowered.endswith(LOWER_BETTER_SUFFIXES):
        return "lower"
    return "info"


def is_time_metric(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith("_seconds") or lowered.endswith("_ns")


def to_seconds(name: str, value: float) -> float:
    return value / 1e9 if name.lower().endswith("_ns") else value


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except OSError as err:
        raise SystemExit(f"bench_diff: cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        raise SystemExit(f"bench_diff: {path} is not valid JSON: {err}")
    schema = report.get("schema")
    if schema != SCHEMA_VERSION:
        raise SystemExit(
            f"bench_diff: {path} has schema {schema!r}, "
            f"this tool reads schema {SCHEMA_VERSION}"
        )
    return report


class Row:
    """One compared value: verdict is 'ok', 'regression', or 'info'."""

    def __init__(self, name, baseline, current, verdict, note=""):
        self.name = name
        self.baseline = baseline
        self.current = current
        self.verdict = verdict
        self.note = note

    @property
    def change_pct(self):
        if self.baseline == 0:
            return None
        return (self.current - self.baseline) / abs(self.baseline) * 100.0


def compare_value(name, baseline, current, threshold_pct, min_seconds):
    """Compare one metric pair into a Row."""
    kind = direction(name)
    if kind == "info":
        return Row(name, baseline, current, "info")
    if is_time_metric(name):
        if (
            to_seconds(name, baseline) < min_seconds
            and to_seconds(name, current) < min_seconds
        ):
            return Row(name, baseline, current, "info", "below noise floor")
    if baseline == 0:
        # Nothing sensible to gate against; surface it, don't fail.
        return Row(name, baseline, current, "info", "zero baseline")
    if kind == "higher":
        regressed = current < baseline * (1.0 - threshold_pct / 100.0)
    else:
        regressed = current > baseline * (1.0 + threshold_pct / 100.0)
    return Row(name, baseline, current, "regression" if regressed else "ok")


def timer_mean_ns(timer: dict) -> float:
    count = timer.get("count", 0)
    if not count:
        return 0.0
    return timer.get("total_ns", 0) / count


def env_mismatches(baseline_env: dict, current_env: dict) -> list:
    out = []
    for field in COMPARABLE_ENV_FIELDS:
        a, b = baseline_env.get(field), current_env.get(field)
        if a != b:
            out.append(f"{field}: baseline={a!r} current={b!r}")
    return out


def threshold_for(name, default_pct, overrides):
    return overrides.get(name, default_pct)


def compare_reports(baseline, current, args):
    """Returns (rows, warnings)."""
    rows, warnings = [], []

    mismatches = env_mismatches(baseline.get("env", {}), current.get("env", {}))
    comparable = not mismatches
    if mismatches:
        warnings.append(
            "environment fingerprints differ — comparison is informational "
            "only:\n  " + "\n  ".join(mismatches)
        )

    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name in base_metrics:
        if name not in cur_metrics:
            rows.append(Row(name, base_metrics[name], float("nan"), "info",
                            "missing in current"))
            continue
        row = compare_value(
            name,
            base_metrics[name],
            cur_metrics[name],
            threshold_for(name, args.threshold, args.threshold_overrides),
            args.min_seconds,
        )
        rows.append(row)
    for name in cur_metrics:
        if name not in base_metrics:
            rows.append(Row(name, float("nan"), cur_metrics[name], "info",
                            "new metric"))

    base_timers = baseline.get("timers", {})
    cur_timers = current.get("timers", {})
    for name in base_timers:
        if name not in cur_timers:
            continue
        label = f"timer:{name}.mean_ns"
        row = compare_value(
            label,
            timer_mean_ns(base_timers[name]),
            timer_mean_ns(cur_timers[name]),
            threshold_for(label, args.threshold, args.threshold_overrides),
            args.min_seconds,
        )
        rows.append(row)

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for name in sorted(set(base_counters) | set(cur_counters)):
        a = base_counters.get(name, 0)
        b = cur_counters.get(name, 0)
        if args.fail_on_counter_change and a != b:
            rows.append(Row(f"counter:{name}", a, b, "regression",
                            "counter drift"))
        elif a != b:
            rows.append(Row(f"counter:{name}", a, b, "info", "changed"))

    if not comparable:
        for row in rows:
            if row.verdict == "regression":
                row.verdict = "info"
                row.note = (row.note + "; " if row.note else "") + "env mismatch"
    return rows, warnings


def format_value(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.6g}"
    return str(value)


def render_table(rows, markdown=False):
    headers = ("metric", "baseline", "current", "change", "verdict")
    table = []
    for row in rows:
        pct = row.change_pct
        change = "-" if pct is None else f"{pct:+.1f}%"
        verdict = row.verdict + (f" ({row.note})" if row.note else "")
        table.append((row.name, format_value(row.baseline),
                      format_value(row.current), change, verdict))
    if markdown:
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join("---" for _ in headers) + "|"]
        lines += ["| " + " | ".join(entry) + " |" for entry in table]
        return "\n".join(lines)
    widths = [max(len(headers[i]), *(len(entry[i]) for entry in table))
              if table else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for entry in table:
        lines.append("  ".join(entry[i].ljust(widths[i])
                               for i in range(len(entry))))
    return "\n".join(lines)


def parse_threshold_overrides(pairs):
    overrides = {}
    for pair in pairs:
        name, sep, pct = pair.rpartition("=")
        if not sep or not name:
            raise SystemExit(
                f"bench_diff: --threshold-for expects NAME=PCT, got {pair!r}")
        try:
            overrides[name] = float(pct)
        except ValueError:
            raise SystemExit(
                f"bench_diff: bad percentage in --threshold-for {pair!r}")
    return overrides


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="compare two MiniCost run reports; exit 1 on regression")
    parser.add_argument("baseline", help="baseline run report (JSON)")
    parser.add_argument("current", help="current run report (JSON)")
    parser.add_argument("--threshold", type=float, default=50.0,
                        help="allowed regression, percent (default 50)")
    parser.add_argument("--threshold-for", action="append", default=[],
                        metavar="NAME=PCT",
                        help="per-metric threshold override (repeatable)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="noise floor for time metrics (default 0.01s)")
    parser.add_argument("--summary-md", metavar="PATH",
                        help="append a markdown summary table to PATH")
    parser.add_argument("--fail-on-counter-change", action="store_true",
                        help="any obs counter drift is a failure")
    try:
        args = parser.parse_args(argv)
    except SystemExit as err:
        # argparse exits 2 on usage errors already; normalize other codes.
        return 2 if err.code not in (0, 2) else (err.code or 0)
    args.threshold_overrides = parse_threshold_overrides(args.threshold_for)

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    rows, warnings = compare_reports(baseline, current, args)

    name = current.get("bench", "?")
    print(f"bench_diff: {name} — {args.baseline} vs {args.current}")
    for warning in warnings:
        print(f"WARNING: {warning}", file=sys.stderr)
    print(render_table(rows))

    regressions = [row for row in rows if row.verdict == "regression"]
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond threshold:")
        for row in regressions:
            print(f"  {row.name}: {format_value(row.baseline)} -> "
                  f"{format_value(row.current)} ({row.change_pct:+.1f}%)")
    else:
        print("\nno regressions beyond threshold")

    if args.summary_md:
        verdict = "REGRESSION" if regressions else "ok"
        with open(args.summary_md, "a", encoding="utf-8") as handle:
            handle.write(f"### bench_diff: {name} — {verdict}\n\n")
            for warning in warnings:
                handle.write(f"> **warning**: {warning}\n\n")
            handle.write(render_table(rows, markdown=True) + "\n\n")

    return 1 if regressions else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SystemExit as err:
        if isinstance(err.code, str):
            print(err.code, file=sys.stderr)
            sys.exit(2)
        raise
