// minicost — the command-line face of the library.
//
//   minicost generate --files 5000 --days 62 --out trace.csv
//   minicost convert  --pagecounts <dir> --out trace.csv
//   minicost analyze  <trace.csv>
//   minicost plan     <trace.csv> --policy optimal|greedy|hot|cold|mpc
//   minicost crossover [--preset azure|s3|gcs]
//
// Everything operates on the CSV trace container of trace/trace_io.hpp, so
// pipelines can mix synthetic and real (pagecounts) workloads.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>

#include "core/decision_cache.hpp"
#include "core/forecast_policy.hpp"
#include "core/greedy.hpp"
#include "core/optimal.hpp"
#include "core/plan_driver.hpp"
#include "core/planner.hpp"
#include "core/rl_policy.hpp"
#include "core/serve_command.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "sim/cost_model.hpp"
#include "store/trace_reader.hpp"
#include "trace/analysis.hpp"
#include "trace/pagecounts_parser.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

using namespace minicost;

int cmd_generate(int argc, const char* const* argv) {
  util::Cli cli("minicost generate", "synthesize a Wikipedia-like trace");
  cli.add_flag("files", "5000", "number of data files");
  cli.add_flag("days", "62", "horizon in days");
  cli.add_flag("seed", "42", "generator seed");
  cli.add_flag("out", "trace.csv", "output trace file");
  if (!cli.parse(argc, argv)) return 1;

  trace::SyntheticConfig config;
  config.file_count = static_cast<std::size_t>(cli.integer("files"));
  config.days = static_cast<std::size_t>(cli.integer("days"));
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const trace::RequestTrace tr = trace::generate_synthetic(config);
  trace::save_trace(tr, cli.str("out"));
  std::cout << "wrote " << tr.file_count() << " files x " << tr.days()
            << " days (" << tr.groups().size() << " co-request groups) to "
            << cli.str("out") << "\n";
  return 0;
}

int cmd_convert(int argc, const char* const* argv) {
  util::Cli cli("minicost convert", "convert Wikimedia dumps to a trace");
  cli.add_flag("pagecounts", "", "directory of classic hourly dump files");
  cli.add_flag("days", "62", "horizon in days");
  cli.add_flag("project", "en", "project filter");
  cli.add_flag("size-mb", "100", "Poisson mean file size, MB");
  cli.add_flag("write-ratio", "0.02", "writes per read");
  cli.add_flag("seed", "42", "size-sampling seed");
  cli.add_flag("out", "trace.csv", "output trace file");
  if (!cli.parse(argc, argv)) return 1;

  const std::string dir = cli.str("pagecounts");
  if (dir.empty()) {
    std::cerr << "convert: --pagecounts <dir> is required\n";
    return 1;
  }
  const trace::RequestTrace tr = trace::load_pagecounts_directory(
      dir, static_cast<std::size_t>(cli.integer("days")), cli.str("project"),
      cli.real("size-mb"), cli.real("write-ratio"),
      static_cast<std::uint64_t>(cli.integer("seed")));
  trace::save_trace(tr, cli.str("out"));
  std::cout << "converted " << tr.file_count() << " titles to "
            << cli.str("out") << "\n";
  return 0;
}

int cmd_analyze(int argc, const char* const* argv) {
  util::Cli cli("minicost analyze", "Section-3 style trace analysis");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "analyze: need a trace file\n";
    return 1;
  }
  const trace::RequestTrace tr = trace::load_trace(cli.positional().front());
  std::cout << "trace: " << tr.file_count() << " files x " << tr.days()
            << " days, " << util::format_double(tr.total_size_gb(), 1)
            << " GB, " << tr.groups().size() << " co-request groups\n\n";

  const trace::VariabilityAnalysis analysis = trace::analyze_variability(tr);
  util::Table table({"std-dev bucket", "files", "share"});
  for (std::size_t b = 0; b < analysis.histogram.bucket_count(); ++b) {
    table.add_row(
        {analysis.histogram.label(b),
         util::format_count(analysis.histogram.count(b)),
         util::format_double(100.0 * analysis.histogram.share(b), 2) + "%"});
  }
  std::cout << table.to_string();
  return 0;
}

/// How `--policy rl` builds its agent: a checkpoint when given, otherwise a
/// fresh deterministic initialization from --agent-seed (untrained, but it
/// runs the full featurize/forward pipeline — what the decision-cache
/// smokes and benches exercise).
struct RlCliOptions {
  std::string checkpoint;
  std::uint64_t seed = 1234;
};

std::unique_ptr<core::TieringPolicy> make_policy(const std::string& which,
                                                 const RlCliOptions& rl = {}) {
  if (which == "hot") return core::make_hot_policy();
  if (which == "cold") return core::make_cold_policy();
  if (which == "greedy") return std::make_unique<core::GreedyPolicy>();
  if (which == "mpc") return std::make_unique<core::ForecastMpcPolicy>();
  if (which == "optimal") return std::make_unique<core::OptimalPolicy>();
  if (which == "rl") {
    core::RlPolicyOptions options;
    options.seed = rl.seed;
    options.checkpoint = rl.checkpoint;
    return core::make_rl_policy(options);
  }
  return nullptr;
}

/// Name check without constructing (an rl policy builds a whole agent).
bool known_policy(const std::string& which) {
  return which == "hot" || which == "cold" || which == "greedy" ||
         which == "mpc" || which == "optimal" || which == "rl";
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// The driver-mode result rows (serve, sweep, --replan) in one fixed CSV
/// schema. Costs print with %.17g so two byte-identical bills render as
/// string-identical rows — the serve smoke in CI compares them textually.
constexpr const char* kRowHeader =
    "event,policy,shard_files,shards,replanned,wall_seconds,"
    "decide_sum_seconds,file_decide_p50_ns,file_decide_p99_ns,total_cost,"
    "tier_changes";

std::string format_row(const std::string& event, std::size_t shard_files,
                       const core::PlanDriverRun& run) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%s,%s,%zu,%zu,%zu,%.6f,%.6f,%.1f,%.1f,%.17g,%" PRIu64,
                event.c_str(), run.policy_name.c_str(), shard_files,
                run.shard_count, run.replanned_shards, run.wall_seconds,
                run.decision_seconds, run.file_decide_p50_ns,
                run.file_decide_p99_ns, run.report.grand_total().total(),
                run.report.tier_changes());
  return buf;
}

bool bills_identical(const sim::BillingReport& a, const sim::BillingReport& b) {
  if (a.file_count() != b.file_count() || a.days() != b.days()) return false;
  const auto& ta = a.grand_total();
  const auto& tb = b.grand_total();
  if (std::memcmp(&ta, &tb, sizeof ta) != 0) return false;
  if (a.tier_changes() != b.tier_changes()) return false;
  for (std::size_t f = 0; f < a.file_count(); ++f)
    if (a.file_total(f) != b.file_total(f)) return false;
  return true;
}

/// Pretty bill + timing summary for one driver run (table format).
void print_run(const core::PlanDriverRun& run, const store::TraceReader& reader,
               const pricing::PricingPolicy& prices) {
  const auto& total = run.report.grand_total();
  util::Table bill({"component", "amount"});
  bill.add_row({"storage (Cs)", util::format_money(total.storage)});
  bill.add_row({"reads (Cr)", util::format_money(total.read)});
  bill.add_row({"writes (Cw)", util::format_money(total.write)});
  bill.add_row({"tier changes (Cc)", util::format_money(total.change)});
  bill.add_row({"total", util::format_money(total.total())});
  std::cout << run.policy_name << " over days " << run.start_day << ".."
            << reader.days() << " (" << prices.name() << ", "
            << run.shard_count << " shards, " << run.replanned_shards
            << " planned):\n"
            << bill.to_string() << "tier changes: "
            << util::format_count(run.report.tier_changes())
            << ", wall: " << util::format_double(run.wall_seconds, 2)
            << "s, decide sum: "
            << util::format_double(run.decision_seconds, 2)
            << "s, per-file decide p50/p99: "
            << util::format_double(run.file_decide_p50_ns, 0) << "/"
            << util::format_double(run.file_decide_p99_ns, 0) << " ns\n";
}

struct DriverConfig {
  core::PlanDriverOptions options;
  std::vector<std::string> policies;  ///< sweep set; front() = current
  RlCliOptions rl;                    ///< agent source for --policy rl
};

/// Resident serve loop: line commands on stdin drive a warm PlanDriver per
/// policy (the policy object — e.g. a deployed A3C agent — and its per-shard
/// report cache persist across commands). Emits one CSV row per plan/replan.
int serve_loop(const store::TraceReader& reader,
               const pricing::PricingPolicy& prices, DriverConfig config) {
  std::map<std::string, std::unique_ptr<core::TieringPolicy>> policies;
  std::map<std::string, std::unique_ptr<core::PlanDriver>> drivers;
  std::string current = config.policies.front();

  const auto driver_for =
      [&](const std::string& name) -> core::PlanDriver* {
    auto it = drivers.find(name);
    if (it != drivers.end()) return it->second.get();
    std::unique_ptr<core::TieringPolicy> policy = make_policy(name, config.rl);
    if (policy == nullptr) return nullptr;
    auto driver = std::make_unique<core::PlanDriver>(reader, prices, *policy,
                                                     config.options);
    core::PlanDriver* raw = driver.get();
    policies.emplace(name, std::move(policy));
    drivers.emplace(name, std::move(driver));
    return raw;
  };

  std::cout << kRowHeader << std::endl;
  std::string line;
  while (std::getline(std::cin, line)) {
    // The grammar lives in core::parse_serve_command (pure, never throws,
    // fuzzed by fuzz/fuzz_serve.cpp); malformed input gets one error row
    // and the loop keeps serving.
    const core::ServeCommand cmd = core::parse_serve_command(line);
    using Kind = core::ServeCommand::Kind;
    if (cmd.kind == Kind::kNone) continue;
    if (cmd.kind == Kind::kQuit) break;
    if (cmd.kind == Kind::kError) {
      std::cout << "error," << cmd.error << std::endl;
      continue;
    }
    try {
      switch (cmd.kind) {
        case Kind::kPlan:
        case Kind::kReplan: {
          core::PlanDriver* driver = driver_for(current);
          if (driver == nullptr) {
            std::cout << "error,unknown policy " << current << std::endl;
            break;
          }
          const core::PlanDriverRun run =
              cmd.kind == Kind::kPlan ? driver->run() : driver->replan();
          std::cout << format_row(
                           cmd.kind == Kind::kPlan ? "plan" : "replan",
                           config.options.shard_files, run)
                    << std::endl;
          break;
        }
        case Kind::kTouch:
          // Dirty marks apply to every warm driver so a later `policy X` +
          // `replan` re-plans the touched shards under that policy too.
          for (auto& [name, driver] : drivers)
            driver->mark_dirty(cmd.first, cmd.count);
          if (drivers.empty())
            std::cout << "error,no warm driver to touch (run plan first)"
                      << std::endl;
          else
            std::cout << "touched," << cmd.first << "," << cmd.count
                      << std::endl;
          break;
        case Kind::kPolicy:
          if (!known_policy(cmd.name)) {
            std::cout << "error,unknown policy " << cmd.name << std::endl;
            break;
          }
          current = cmd.name;
          std::cout << "policy," << cmd.name << std::endl;
          break;
        case Kind::kSweep:
          for (const std::string& name : config.policies) {
            core::PlanDriver* driver = driver_for(name);
            if (driver == nullptr) continue;
            std::cout << format_row("sweep", config.options.shard_files,
                                    driver->run())
                      << std::endl;
          }
          break;
        case Kind::kStats: {
          core::PlanDriver* driver = driver_for(current);
          std::cout << "stats,policy=" << current
                    << ",shards=" << (driver ? driver->shard_count() : 0)
                    << ",dirty=" << (driver ? driver->dirty_shard_count() : 0)
                    << ",warm_policies=" << drivers.size() << std::endl;
          if (driver != nullptr && driver->decision_cache() != nullptr) {
            const core::DecisionCacheStats cs =
                driver->decision_cache()->stats();
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "cache,hits=%" PRIu64 ",misses=%" PRIu64
                          ",hit_rate=%.4f,entries=%" PRIu64
                          ",evictions=%" PRIu64 ",dedup_ratio=%.4f"
                          ",bytes=%" PRIu64,
                          cs.hits, cs.misses, cs.hit_rate(), cs.entries,
                          cs.evictions, cs.dedup_ratio(), cs.resident_bytes);
            std::cout << buf << std::endl;
          }
          // A LIVE registry snapshot each call — counters registered after
          // driver construction (e.g. core.cache.* on the first cached
          // plan) show up as soon as they exist.
          for (const auto& snapshot : obs::Registry::global().counters())
            std::cout << "counter," << snapshot.name << "," << snapshot.value
                      << std::endl;
          break;
        }
        case Kind::kHelp:
          std::cout << "commands: plan | replan | touch FIRST COUNT | "
                       "policy NAME | sweep | stats | quit"
                    << std::endl;
          break;
        default:
          break;
      }
    } catch (const std::exception& error) {
      std::cout << "error," << error.what() << std::endl;
    }
  }
  return 0;
}

/// Plans a .mct store through the PlanDriver: one-shot, sweep (multiple
/// policies and/or shard sizes), --replan self-check, or --serve loop.
int cmd_plan_store(const util::Cli& cli) {
  const store::TraceReader reader(cli.positional().front());
  const std::string preset = cli.str("preset");
  const pricing::PricingPolicy prices =
      preset == "s3"    ? pricing::PricingPolicy::s3_like()
      : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                        : pricing::PricingPolicy::azure_2020();

  DriverConfig config;
  config.policies = split_list(cli.str("policy"));
  if (config.policies.empty()) {
    std::cerr << "plan: --policy list is empty\n";
    return 1;
  }
  for (const std::string& name : config.policies)
    if (!known_policy(name)) {
      std::cerr << "plan: unknown policy '" << name << "'\n";
      return 1;
    }
  // Validate before the size_t casts: a negative flag value would silently
  // wrap into an absurd shard size or prefetch depth.
  if (cli.integer("shard-files") < 0) {
    std::cerr << "plan: --shard-files must be >= 0 (0 = one shard), got "
              << cli.integer("shard-files") << "\n";
    return 1;
  }
  if (cli.integer("prefetch-depth") < 1 || cli.integer("prefetch-depth") > 64) {
    std::cerr << "plan: --prefetch-depth must be in [1, 64] (shards readied "
                 "ahead), got "
              << cli.integer("prefetch-depth") << "\n";
    return 1;
  }
  const std::string decision_cache = cli.str("decision-cache");
  if (decision_cache != "on" && decision_cache != "off") {
    std::cerr << "plan: --decision-cache must be on or off, got '"
              << decision_cache << "'\n";
    return 1;
  }
  if (cli.integer("cache-capacity") < 0) {
    std::cerr << "plan: --cache-capacity must be >= 0 (0 = default), got "
              << cli.integer("cache-capacity") << "\n";
    return 1;
  }
  if (cli.integer("agent-seed") < 0) {
    std::cerr << "plan: --agent-seed must be >= 0, got "
              << cli.integer("agent-seed") << "\n";
    return 1;
  }
  config.options.decision_cache = decision_cache == "on";
  config.options.decision_cache_capacity =
      static_cast<std::size_t>(cli.integer("cache-capacity"));
  config.rl.checkpoint = cli.str("agent");
  config.rl.seed = static_cast<std::uint64_t>(cli.integer("agent-seed"));
  config.options.shard_files =
      static_cast<std::size_t>(cli.integer("shard-files"));
  config.options.start_day =
      cli.integer("start") > 0
          ? static_cast<std::size_t>(cli.integer("start"))
          : (reader.days() > 35 ? reader.days() - 35 : 1);
  config.options.pipeline = cli.boolean("pipeline");
  config.options.prefetch_depth =
      static_cast<std::size_t>(cli.integer("prefetch-depth"));

  if (cli.boolean("serve")) return serve_loop(reader, prices, config);

  const std::string format = cli.str("format");
  std::vector<std::size_t> shard_sizes;
  if (!core::parse_size_list(cli.str("sweep-shard-files"), &shard_sizes)) {
    std::cerr << "plan: --sweep-shard-files wants a comma list of "
                 "nonnegative integers, got '"
              << cli.str("sweep-shard-files") << "'\n";
    return 1;
  }
  if (shard_sizes.empty()) shard_sizes.push_back(config.options.shard_files);

  // --replan FIRST:COUNT — full plan, touch, incremental replan, and verify
  // the replanned bill is byte-identical to the full plan's.
  if (!cli.str("replan").empty()) {
    std::size_t first = 0, count = 0;
    if (!core::parse_shard_range(cli.str("replan"), &first, &count)) {
      std::cerr << "plan: --replan expects FIRST:COUNT\n";
      return 1;
    }
    std::unique_ptr<core::TieringPolicy> policy =
        make_policy(config.policies.front(), config.rl);
    core::PlanDriver driver(reader, prices, *policy, config.options);
    const core::PlanDriverRun full = driver.run();
    driver.mark_dirty(first, count);
    const core::PlanDriverRun incremental = driver.replan();
    std::cout << kRowHeader << "\n"
              << format_row("plan", config.options.shard_files, full) << "\n"
              << format_row("replan", config.options.shard_files, incremental)
              << "\n";
    const bool identical =
        bills_identical(full.report, incremental.report);
    std::cout << "replan bill vs full plan: "
              << (identical ? "byte-identical" : "MISMATCH") << "\n";
    return identical ? 0 : 1;
  }

  // Sweep / one-shot: enumerate policy x shard-size cells.
  const bool sweep = config.policies.size() > 1 || shard_sizes.size() > 1;
  std::ostringstream csv;
  csv << kRowHeader << "\n";
  util::Table table({"policy", "shard_files", "shards", "wall s",
                     "decide-sum s", "p50 ns", "p99 ns", "total"});
  core::PlanDriverRun last;
  for (const std::string& name : config.policies) {
    std::unique_ptr<core::TieringPolicy> policy = make_policy(name, config.rl);
    for (const std::size_t shard_files : shard_sizes) {
      core::PlanDriverOptions options = config.options;
      options.shard_files = shard_files;
      core::PlanDriver driver(reader, prices, *policy, options);
      core::PlanDriverRun run = driver.run();
      csv << format_row("plan", shard_files, run) << "\n";
      table.add_row(
          {run.policy_name, util::format_count(shard_files),
           std::to_string(run.shard_count),
           util::format_double(run.wall_seconds, 2),
           util::format_double(run.decision_seconds, 2),
           util::format_double(run.file_decide_p50_ns, 0),
           util::format_double(run.file_decide_p99_ns, 0),
           util::format_money(run.report.grand_total().total())});
      last = std::move(run);
    }
  }

  if (format == "csv") {
    std::cout << csv.str();
  } else if (sweep) {
    std::cout << "sweep over " << cli.positional().front() << " ("
              << prices.name() << "):\n"
              << table.to_string();
  } else {
    print_run(last, reader, prices);
  }
  if (!cli.str("out").empty()) {
    std::ofstream(cli.str("out")) << csv.str();
    std::cout << "[rows] " << cli.str("out") << "\n";
  }

  obs::RunReport report = obs::make_report("minicost_plan");
  report.metrics.emplace_back("pipeline_wall_seconds", last.wall_seconds);
  report.metrics.emplace_back("decide_sum_seconds", last.decision_seconds);
  report.metrics.emplace_back("file_decide_p50_ns", last.file_decide_p50_ns);
  report.metrics.emplace_back("file_decide_p99_ns", last.file_decide_p99_ns);
  report.metrics.emplace_back("total_cost", last.report.grand_total().total());
  std::cout << "[report] "
            << obs::write_report(report,
                                 util::env_str("MINICOST_OUT", "bench_out"))
                   .string()
            << "\n";
  return 0;
}

int cmd_plan(int argc, const char* const* argv) {
  util::Cli cli("minicost plan",
                "bill tiering policies over a trace (.csv in-memory, .mct "
                "through the pipelined PlanDriver)");
  cli.add_flag("policy", "optimal",
               "hot | cold | greedy | optimal | mpc | rl (comma list sweeps)");
  cli.add_flag("agent", "",
               "A3C checkpoint for --policy rl (empty = fresh "
               "deterministic init from --agent-seed)");
  cli.add_flag("agent-seed", "1234", "init seed for --policy rl");
  cli.add_flag("decision-cache", "off",
               "on | off — reuse decisions across days/shards via the "
               "exact-key DecisionCache (bit-identical bills either way)");
  cli.add_flag("cache-capacity", "0",
               "decision-cache entry capacity (0 = default)");
  cli.add_flag("start", "0", "first billed day (default: last 35 days)");
  cli.add_flag("preset", "azure", "price preset");
  cli.add_flag("shard-files", "65536", ".mct files per shard (0 = one shard)");
  cli.add_flag("pipeline", "true",
               "overlap shard materialization with decide/billing (.mct)");
  cli.add_flag("prefetch-depth", "1", "shards readied ahead (pipeline mode)");
  cli.add_flag("serve", "false",
               "resident mode: read plan/replan/touch/policy/sweep commands "
               "from stdin (.mct)");
  cli.add_flag("replan", "",
               "FIRST:COUNT — plan, touch that file range, incrementally "
               "replan, verify byte-identical (.mct)");
  cli.add_flag("sweep-shard-files", "",
               "comma list of shard sizes to sweep (.mct)");
  cli.add_flag("format", "table", "table | csv");
  cli.add_flag("out", "", "also write the CSV rows to this file (.mct)");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "plan: need a trace file\n";
    return 1;
  }
  const std::string& input = cli.positional().front();
  if (input.size() > 4 && input.compare(input.size() - 4, 4, ".mct") == 0)
    return cmd_plan_store(cli);

  const trace::RequestTrace tr = trace::load_trace(input);
  const std::string preset = cli.str("preset");
  const pricing::PricingPolicy prices =
      preset == "s3"    ? pricing::PricingPolicy::s3_like()
      : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                        : pricing::PricingPolicy::azure_2020();

  core::PlanOptions options;
  options.start_day = cli.integer("start") > 0
                          ? static_cast<std::size_t>(cli.integer("start"))
                          : (tr.days() > 35 ? tr.days() - 35 : 1);
  options.initial_tiers =
      core::static_initial_tiers(tr, prices, options.start_day);

  RlCliOptions rl;
  rl.checkpoint = cli.str("agent");
  rl.seed = static_cast<std::uint64_t>(cli.integer("agent-seed"));
  std::unique_ptr<core::TieringPolicy> policy =
      make_policy(cli.str("policy"), rl);
  if (policy == nullptr) {
    std::cerr << "plan: unknown policy '" << cli.str("policy") << "'\n";
    return 1;
  }
  std::unique_ptr<core::DecisionCache> cache;
  if (cli.str("decision-cache") == "on") {
    core::DecisionCacheConfig cache_config;
    if (cli.integer("cache-capacity") > 0)
      cache_config.capacity =
          static_cast<std::size_t>(cli.integer("cache-capacity"));
    cache = std::make_unique<core::DecisionCache>(cache_config);
    options.decision_cache = cache.get();
  }

  const core::PlanResult result = core::run_policy(tr, prices, *policy, options);
  const auto& total = result.report.grand_total();
  util::Table bill({"component", "amount"});
  bill.add_row({"storage (Cs)", util::format_money(total.storage)});
  bill.add_row({"reads (Cr)", util::format_money(total.read)});
  bill.add_row({"writes (Cw)", util::format_money(total.write)});
  bill.add_row({"tier changes (Cc)", util::format_money(total.change)});
  bill.add_row({"total", util::format_money(total.total())});
  std::cout << result.policy_name << " over days " << options.start_day << ".."
            << tr.days() << " (" << prices.name() << "):\n"
            << bill.to_string() << "tier changes: "
            << util::format_count(result.report.tier_changes())
            << ", decision time: "
            << util::format_double(result.decision_seconds, 2) << "s\n";

  // Machine-readable run report (obs counters/timers + env fingerprint) for
  // the CI perf gate; same MINICOST_OUT directory the benches write to.
  obs::RunReport report = obs::make_report("minicost_plan");
  report.metrics.emplace_back("decision_seconds", result.decision_seconds);
  report.metrics.emplace_back("total_cost", total.total());
  std::cout << "[report] "
            << obs::write_report(report,
                                 util::env_str("MINICOST_OUT", "bench_out"))
                   .string()
            << "\n";
  return 0;
}

int cmd_crossover(int argc, const char* const* argv) {
  util::Cli cli("minicost crossover", "tier break-even request rates");
  cli.add_flag("preset", "azure", "price preset");
  cli.add_flag("size-mb", "100", "file size, MB");
  if (!cli.parse(argc, argv)) return 1;
  const std::string preset = cli.str("preset");
  const pricing::PricingPolicy prices =
      preset == "s3"    ? pricing::PricingPolicy::s3_like()
      : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                        : pricing::PricingPolicy::azure_2020();
  const double gb = cli.real("size-mb") / 1024.0;
  util::Table table({"boundary", "reads/day"});
  table.add_row({"hot vs cool",
                 util::format_double(
                     sim::tier_crossover_reads(prices,
                                               pricing::StorageTier::kHot,
                                               pricing::StorageTier::kCool, gb,
                                               0.02),
                     3)});
  table.add_row({"cool vs archive",
                 util::format_double(
                     sim::tier_crossover_reads(
                         prices, pricing::StorageTier::kCool,
                         pricing::StorageTier::kArchive, gb, 0.02),
                     3)});
  std::cout << prices.name() << " @ " << cli.str("size-mb") << " MB:\n"
            << table.to_string();
  return 0;
}

void usage() {
  std::cout << "minicost <command> [flags]\n\ncommands:\n"
               "  generate   synthesize a Wikipedia-like trace\n"
               "  convert    convert Wikimedia pagecounts dumps to a trace\n"
               "  analyze    variability analysis of a trace (paper Fig. 2)\n"
               "  plan       bill a tiering policy over a trace\n"
               "  crossover  tier break-even request rates for a price preset\n"
               "\nrun `minicost <command> --help` for per-command flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  // Each subcommand re-parses from its own argv slice (argv[1] becomes the
  // program name).
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "convert") return cmd_convert(sub_argc, sub_argv);
    if (command == "analyze") return cmd_analyze(sub_argc, sub_argv);
    if (command == "plan") return cmd_plan(sub_argc, sub_argv);
    if (command == "crossover") return cmd_crossover(sub_argc, sub_argv);
  } catch (const std::exception& error) {
    std::cerr << "minicost " << command << ": " << error.what() << "\n";
    return 1;
  }
  usage();
  return command == "--help" || command == "-h" ? 0 : 1;
}
