// minicost — the command-line face of the library.
//
//   minicost generate --files 5000 --days 62 --out trace.csv
//   minicost convert  --pagecounts <dir> --out trace.csv
//   minicost analyze  <trace.csv>
//   minicost plan     <trace.csv> --policy optimal|greedy|hot|cold|mpc
//   minicost crossover [--preset azure|s3|gcs]
//
// Everything operates on the CSV trace container of trace/trace_io.hpp, so
// pipelines can mix synthetic and real (pagecounts) workloads.

#include <iostream>
#include <memory>

#include "core/forecast_policy.hpp"
#include "core/greedy.hpp"
#include "core/optimal.hpp"
#include "core/planner.hpp"
#include "obs/run_report.hpp"
#include "sim/cost_model.hpp"
#include "trace/analysis.hpp"
#include "trace/pagecounts_parser.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace {

using namespace minicost;

int cmd_generate(int argc, const char* const* argv) {
  util::Cli cli("minicost generate", "synthesize a Wikipedia-like trace");
  cli.add_flag("files", "5000", "number of data files");
  cli.add_flag("days", "62", "horizon in days");
  cli.add_flag("seed", "42", "generator seed");
  cli.add_flag("out", "trace.csv", "output trace file");
  if (!cli.parse(argc, argv)) return 1;

  trace::SyntheticConfig config;
  config.file_count = static_cast<std::size_t>(cli.integer("files"));
  config.days = static_cast<std::size_t>(cli.integer("days"));
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const trace::RequestTrace tr = trace::generate_synthetic(config);
  trace::save_trace(tr, cli.str("out"));
  std::cout << "wrote " << tr.file_count() << " files x " << tr.days()
            << " days (" << tr.groups().size() << " co-request groups) to "
            << cli.str("out") << "\n";
  return 0;
}

int cmd_convert(int argc, const char* const* argv) {
  util::Cli cli("minicost convert", "convert Wikimedia dumps to a trace");
  cli.add_flag("pagecounts", "", "directory of classic hourly dump files");
  cli.add_flag("days", "62", "horizon in days");
  cli.add_flag("project", "en", "project filter");
  cli.add_flag("size-mb", "100", "Poisson mean file size, MB");
  cli.add_flag("write-ratio", "0.02", "writes per read");
  cli.add_flag("seed", "42", "size-sampling seed");
  cli.add_flag("out", "trace.csv", "output trace file");
  if (!cli.parse(argc, argv)) return 1;

  const std::string dir = cli.str("pagecounts");
  if (dir.empty()) {
    std::cerr << "convert: --pagecounts <dir> is required\n";
    return 1;
  }
  const trace::RequestTrace tr = trace::load_pagecounts_directory(
      dir, static_cast<std::size_t>(cli.integer("days")), cli.str("project"),
      cli.real("size-mb"), cli.real("write-ratio"),
      static_cast<std::uint64_t>(cli.integer("seed")));
  trace::save_trace(tr, cli.str("out"));
  std::cout << "converted " << tr.file_count() << " titles to "
            << cli.str("out") << "\n";
  return 0;
}

int cmd_analyze(int argc, const char* const* argv) {
  util::Cli cli("minicost analyze", "Section-3 style trace analysis");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "analyze: need a trace file\n";
    return 1;
  }
  const trace::RequestTrace tr = trace::load_trace(cli.positional().front());
  std::cout << "trace: " << tr.file_count() << " files x " << tr.days()
            << " days, " << util::format_double(tr.total_size_gb(), 1)
            << " GB, " << tr.groups().size() << " co-request groups\n\n";

  const trace::VariabilityAnalysis analysis = trace::analyze_variability(tr);
  util::Table table({"std-dev bucket", "files", "share"});
  for (std::size_t b = 0; b < analysis.histogram.bucket_count(); ++b) {
    table.add_row(
        {analysis.histogram.label(b),
         util::format_count(analysis.histogram.count(b)),
         util::format_double(100.0 * analysis.histogram.share(b), 2) + "%"});
  }
  std::cout << table.to_string();
  return 0;
}

int cmd_plan(int argc, const char* const* argv) {
  util::Cli cli("minicost plan", "bill a tiering policy over a trace");
  cli.add_flag("policy", "optimal", "hot | cold | greedy | optimal | mpc");
  cli.add_flag("start", "0", "first billed day (default: last 35 days)");
  cli.add_flag("preset", "azure", "price preset");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "plan: need a trace file\n";
    return 1;
  }
  const trace::RequestTrace tr = trace::load_trace(cli.positional().front());
  const std::string preset = cli.str("preset");
  const pricing::PricingPolicy prices =
      preset == "s3"    ? pricing::PricingPolicy::s3_like()
      : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                        : pricing::PricingPolicy::azure_2020();

  core::PlanOptions options;
  options.start_day = cli.integer("start") > 0
                          ? static_cast<std::size_t>(cli.integer("start"))
                          : (tr.days() > 35 ? tr.days() - 35 : 1);
  options.initial_tiers =
      core::static_initial_tiers(tr, prices, options.start_day);

  std::unique_ptr<core::TieringPolicy> policy;
  const std::string which = cli.str("policy");
  if (which == "hot") policy = core::make_hot_policy();
  else if (which == "cold") policy = core::make_cold_policy();
  else if (which == "greedy") policy = std::make_unique<core::GreedyPolicy>();
  else if (which == "mpc") policy = std::make_unique<core::ForecastMpcPolicy>();
  else if (which == "optimal") policy = std::make_unique<core::OptimalPolicy>();
  else {
    std::cerr << "plan: unknown policy '" << which << "'\n";
    return 1;
  }

  const core::PlanResult result = core::run_policy(tr, prices, *policy, options);
  const auto& total = result.report.grand_total();
  util::Table bill({"component", "amount"});
  bill.add_row({"storage (Cs)", util::format_money(total.storage)});
  bill.add_row({"reads (Cr)", util::format_money(total.read)});
  bill.add_row({"writes (Cw)", util::format_money(total.write)});
  bill.add_row({"tier changes (Cc)", util::format_money(total.change)});
  bill.add_row({"total", util::format_money(total.total())});
  std::cout << result.policy_name << " over days " << options.start_day << ".."
            << tr.days() << " (" << prices.name() << "):\n"
            << bill.to_string() << "tier changes: "
            << util::format_count(result.report.tier_changes())
            << ", decision time: "
            << util::format_double(result.decision_seconds, 2) << "s\n";

  // Machine-readable run report (obs counters/timers + env fingerprint) for
  // the CI perf gate; same MINICOST_OUT directory the benches write to.
  obs::RunReport report = obs::make_report("minicost_plan");
  report.metrics.emplace_back("decision_seconds", result.decision_seconds);
  report.metrics.emplace_back("total_cost", total.total());
  std::cout << "[report] "
            << obs::write_report(report,
                                 util::env_str("MINICOST_OUT", "bench_out"))
                   .string()
            << "\n";
  return 0;
}

int cmd_crossover(int argc, const char* const* argv) {
  util::Cli cli("minicost crossover", "tier break-even request rates");
  cli.add_flag("preset", "azure", "price preset");
  cli.add_flag("size-mb", "100", "file size, MB");
  if (!cli.parse(argc, argv)) return 1;
  const std::string preset = cli.str("preset");
  const pricing::PricingPolicy prices =
      preset == "s3"    ? pricing::PricingPolicy::s3_like()
      : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                        : pricing::PricingPolicy::azure_2020();
  const double gb = cli.real("size-mb") / 1024.0;
  util::Table table({"boundary", "reads/day"});
  table.add_row({"hot vs cool",
                 util::format_double(
                     sim::tier_crossover_reads(prices,
                                               pricing::StorageTier::kHot,
                                               pricing::StorageTier::kCool, gb,
                                               0.02),
                     3)});
  table.add_row({"cool vs archive",
                 util::format_double(
                     sim::tier_crossover_reads(
                         prices, pricing::StorageTier::kCool,
                         pricing::StorageTier::kArchive, gb, 0.02),
                     3)});
  std::cout << prices.name() << " @ " << cli.str("size-mb") << " MB:\n"
            << table.to_string();
  return 0;
}

void usage() {
  std::cout << "minicost <command> [flags]\n\ncommands:\n"
               "  generate   synthesize a Wikipedia-like trace\n"
               "  convert    convert Wikimedia pagecounts dumps to a trace\n"
               "  analyze    variability analysis of a trace (paper Fig. 2)\n"
               "  plan       bill a tiering policy over a trace\n"
               "  crossover  tier break-even request rates for a price preset\n"
               "\nrun `minicost <command> --help` for per-command flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  // Each subcommand re-parses from its own argv slice (argv[1] becomes the
  // program name).
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "convert") return cmd_convert(sub_argc, sub_argv);
    if (command == "analyze") return cmd_analyze(sub_argc, sub_argv);
    if (command == "plan") return cmd_plan(sub_argc, sub_argv);
    if (command == "crossover") return cmd_crossover(sub_argc, sub_argv);
  } catch (const std::exception& error) {
    std::cerr << "minicost " << command << ": " << error.what() << "\n";
    return 1;
  }
  usage();
  return command == "--help" || command == "-h" ? 0 : 1;
}
