#!/usr/bin/env python3
"""Determinism-contract linter for the MiniCost tree.

The repository's reproducibility rests on two contracts (DESIGN.md §7/§8):
every stochastic component draws from an explicitly seeded util::Rng, and
every parallel path is pool-size independent. Both are easy to break with a
single innocent-looking line — `rand()`, a range-for over an unordered map
in planning code, an OpenMP pragma — so this linter greps the source tree
for the known contract hazards with precise allowlists.

Checked rules (ids are what `allow(...)` suppressions name):

  raw-rand            rand()/srand() — C RNG has hidden global state; all
                      randomness must come from util::Rng.
  random-device       std::random_device — nondeterministic entropy; only
                      src/util/rng.* may touch an entropy source.
  time-seed           time(nullptr)/time(NULL)/std::time(...) — wall-clock
                      values feeding seeds or logic make runs
                      irreproducible; timing belongs in util::Stopwatch.
  openmp-pragma       #pragma omp — threading must go through
                      util::ThreadPool so the pool-size-independence
                      contract (and its tests) cover it.
  raw-new-delete      `new`/`delete` outside tests — ownership goes through
                      containers and make_unique; a leak in a worker thread
                      is a race report away from masking a real bug.
  ffp-contract-guard  every src/nn kernel file using MINICOST_TARGET_CLONES
                      must carry -ffp-contract=off in src/nn/CMakeLists.txt
                      (a fused multiply-add would break the bit-identical
                      batch == scalar guarantee).

(The unordered-iteration rule moved to tools/lint_ast.py, which resolves
container types through aliases and member declarations and scopes the rule
to minicost_core's actual link closure instead of a directory list.)

Suppression syntax — same line or the line directly above the finding:

    // lint-contract: allow(<rule-id>) -- <reason>

The reason is mandatory; a suppression without one is itself an error, as is
a suppression naming an unknown rule id. A *stale* suppression — one whose
covered lines no longer trigger the named rule — is an error too
(stale-suppression), so silenced findings cannot outlive the code they
silenced.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src", "tools", "bench")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

SUPPRESS_RE = re.compile(
    r"lint-contract:\s*allow\((?P<rule>[A-Za-z0-9_-]+)\)"
    r"(?:\s*(?:--|—|:)\s*(?P<reason>\S.*))?"
)

# Rules as (id, regex, message). Path-scoped rules carry a predicate.
RAW_RAND_RE = re.compile(r"(?<![\w:])s?rand\s*\(")
RANDOM_DEVICE_RE = re.compile(r"std\s*::\s*random_device")
TIME_SEED_RE = re.compile(r"(?<![\w:])(?:std\s*::\s*)?time\s*\(\s*(?:nullptr|NULL|0)\s*\)")
OPENMP_RE = re.compile(r"#\s*pragma\s+omp\b")
NEW_RE = re.compile(r"(?<![\w:])new\s+[A-Za-z_(]")
DELETE_RE = re.compile(r"(?<![\w:])delete(?:\s*\[\s*\])?\s+[A-Za-z_*(]")
TARGET_CLONES_MACRO = "MINICOST_TARGET_CLONES"

RULE_IDS = (
    "raw-rand",
    "random-device",
    "time-seed",
    "openmp-pragma",
    "raw-new-delete",
    "ffp-contract-guard",
)


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literals, preserving line count.

    The suppression scanner reads the raw lines; the rule regexes run on the
    stripped ones so a mention of rand() in a comment is not a finding.
    """
    stripped: list[str] = []
    in_block = False
    for line in lines:
        out = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                out.append(ch)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                out.append(quote)
                i += 1
                continue
            out.append(ch)
            i += 1
        stripped.append("".join(out))
    return stripped


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def suppressions(raw_lines: list[str], path: Path):
    """Maps line numbers (1-based) to the rule ids suppressed there.

    A suppression comment covers its own line and the line below it, so it
    can sit inline or on its own line above the finding. Returns
    (allowed, declared, errors) where declared is [(line, rule)] for the
    stale-suppression pass.
    """
    allowed: dict[int, set[str]] = {}
    declared: list[tuple[int, str]] = []
    errors: list[Finding] = []
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            if "lint-contract" in line and "allow" in line:
                errors.append(Finding(path, idx, "bad-suppression",
                                      "malformed lint-contract suppression"))
            continue
        if not m.group("reason"):
            errors.append(Finding(path, idx, "bad-suppression",
                                  "suppression must give a reason: "
                                  "// lint-contract: allow(rule) -- why"))
            continue
        rule = m.group("rule")
        if rule not in RULE_IDS:
            errors.append(Finding(path, idx, "bad-suppression",
                                  f"unknown rule id '{rule}' in "
                                  "lint-contract suppression"))
            continue
        declared.append((idx, rule))
        allowed.setdefault(idx, set()).add(rule)
        allowed.setdefault(idx + 1, set()).add(rule)
    return allowed, declared, errors


def lint_file(path: Path, rel: Path):
    """Returns (findings, declared_suppressions, used_suppression_lines)."""
    try:
        raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError as err:
        return [Finding(rel, 0, "io-error", str(err))], [], set()
    code = strip_comments_and_strings(raw)
    allowed, declared, findings = suppressions(raw, rel)

    rel_posix = rel.as_posix()
    in_rng = re.search(r"(^|/)src/util/rng\.(cpp|hpp)$", rel_posix) is not None
    in_tests = rel_posix.startswith("tests/") or "/tests/" in rel_posix

    used: set[tuple[int, str]] = set()

    def check(idx: int, rule: str, message: str) -> None:
        if rule in allowed.get(idx, set()):
            for decl_line in (idx, idx - 1):
                if (decl_line, rule) in set(declared):
                    used.add((decl_line, rule))
            return
        findings.append(Finding(rel, idx, rule, message))

    for idx, line in enumerate(code, start=1):
        if RAW_RAND_RE.search(line):
            check(idx, "raw-rand",
                  "rand()/srand() forbidden; draw from an explicitly seeded util::Rng")
        if RANDOM_DEVICE_RE.search(line) and not in_rng:
            check(idx, "random-device",
                  "std::random_device outside src/util/rng.*; entropy breaks reproducibility")
        if TIME_SEED_RE.search(line):
            check(idx, "time-seed",
                  "wall-clock time(...) as a value; seeds must be explicit, timing uses util::Stopwatch")
        if OPENMP_RE.search(line):
            check(idx, "openmp-pragma",
                  "#pragma omp forbidden; parallelism goes through util::ThreadPool")
        if not in_tests and (NEW_RE.search(line) or DELETE_RE.search(line)):
            check(idx, "raw-new-delete",
                  "raw new/delete outside tests; use containers or std::make_unique")
    return findings, declared, used


def lint_ffp_contract(root: Path) -> list[Finding]:
    """Kernel files using MINICOST_TARGET_CLONES need -ffp-contract=off."""
    findings: list[Finding] = []
    nn_dir = root / "src" / "nn"
    cml = nn_dir / "CMakeLists.txt"
    if not nn_dir.is_dir():
        return findings
    guarded: set[str] = set()
    if cml.is_file():
        text = cml.read_text(encoding="utf-8", errors="replace")
        for m in re.finditer(
                r"set_source_files_properties\s*\(([^)]*?)PROPERTIES[^)]*?"
                r"ffp-contract=off[^)]*?\)", text, re.S):
            guarded.update(m.group(1).split())
    for src in sorted(nn_dir.glob("*.cpp")):
        body = src.read_text(encoding="utf-8", errors="replace")
        if TARGET_CLONES_MACRO in body and src.name not in guarded:
            findings.append(Finding(
                src.relative_to(root), 1, "ffp-contract-guard",
                f"{src.name} uses {TARGET_CLONES_MACRO} but is not compiled "
                "with -ffp-contract=off in src/nn/CMakeLists.txt; FMA fusion "
                "would break batch==scalar bit-identity"))
    return findings


def run(root: Path, paths: list[Path] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    if paths:
        files = [p for p in paths if p.suffix in SOURCE_SUFFIXES]
    else:
        files = []
        for top in SOURCE_DIRS:
            base = root / top
            if base.is_dir():
                files.extend(p for p in sorted(base.rglob("*"))
                             if p.suffix in SOURCE_SUFFIXES and p.is_file())
    declared_by_rel: dict[str, list[tuple[int, str]]] = {}
    used_by_rel: dict[str, set[tuple[int, str]]] = {}
    for path in files:
        rel = path.relative_to(root) if path.is_absolute() else path
        file_findings, declared, used = lint_file(root / rel, rel)
        findings.extend(file_findings)
        declared_by_rel[rel.as_posix()] = declared
        used_by_rel[rel.as_posix()] = used
    findings.extend(lint_ffp_contract(root))
    # Stale-suppression pass: every declared allow() must have silenced at
    # least one finding on the lines it covers.
    for rel_posix, declared in declared_by_rel.items():
        used = used_by_rel[rel_posix]
        for idx, rule in declared:
            if (idx, rule) not in used:
                findings.append(Finding(
                    Path(rel_posix), idx, "stale-suppression",
                    f"allow({rule}) no longer suppresses anything here; "
                    "delete the comment (or fix the rule id)"))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="specific files to lint (default: src/ tools/ bench/)")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint_contract: no such root: {root}", file=sys.stderr)
        return 2
    findings = run(root, args.paths or None)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_contract: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
