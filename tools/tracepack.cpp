// tracepack — pack, inspect, verify, and evaluate .mct trace containers.
//
//   tracepack pack     <trace.csv> <trace.mct>
//   tracepack unpack   <trace.mct> <trace.csv>
//   tracepack info     <trace.mct>
//   tracepack verify   <trace.mct>
//   tracepack generate --files 1000000 --days 62 --out trace.mct
//   tracepack eval     <trace.mct> --policy greedy --shard-files 65536
//
// `generate` streams the synthetic workload into the container chunk by
// chunk (generate_synthetic_files), so a 1M-file, 62-day trace packs in a
// few hundred MB of RAM; `eval` runs a policy shard-streamed
// (core/shard_eval.hpp) and can check the merged bill bit-for-bit against
// the monolithic in-memory path with --compare.

#include <cinttypes>
#include <cstring>
#include <iostream>
#include <memory>

#include "codec/chunk_codec.hpp"
#include "core/forecast_policy.hpp"
#include "core/greedy.hpp"
#include "core/optimal.hpp"
#include "core/shard_eval.hpp"
#include "obs/run_report.hpp"
#include "store/trace_reader.hpp"
#include "store/trace_writer.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace minicost;

using obs::peak_rss_mib;

std::unique_ptr<core::TieringPolicy> make_policy(const std::string& which) {
  if (which == "hot") return core::make_hot_policy();
  if (which == "cold") return core::make_cold_policy();
  if (which == "greedy") return std::make_unique<core::GreedyPolicy>();
  if (which == "mpc") return std::make_unique<core::ForecastMpcPolicy>();
  if (which == "optimal") return std::make_unique<core::OptimalPolicy>();
  return nullptr;
}

pricing::PricingPolicy make_prices(const std::string& preset) {
  return preset == "s3"    ? pricing::PricingPolicy::s3_like()
         : preset == "gcs" ? pricing::PricingPolicy::gcs_like()
                           : pricing::PricingPolicy::azure_2020();
}

/// Shared --codec/--files-per-chunk handling for pack and generate. Returns
/// false (after printing a one-line error) on a bad combination.
bool writer_options_from_cli(const util::Cli& cli, const char* command,
                             store::WriterOptions& options) {
  options.codec = cli.str("codec");
  if (options.codec == "v1") options.codec.clear();  // explicit v1 spelling
  const std::int64_t per_chunk = cli.integer("files-per-chunk");
  if (per_chunk < 1 ||
      per_chunk > static_cast<std::int64_t>(store::kMaxFilesPerChunk)) {
    std::cerr << command << ": --files-per-chunk must be in [1, "
              << store::kMaxFilesPerChunk << "] (got " << per_chunk << ")\n";
    return false;
  }
  options.files_per_chunk = static_cast<std::uint32_t>(per_chunk);
  return true;
}

int cmd_pack(int argc, const char* const* argv) {
  util::Cli cli("tracepack pack", "convert a CSV trace to a .mct container");
  cli.add_flag("codec", "v1",
               "container codec: v1 (uncompressed version 1 layout) or a v2 "
               "chunk codec: raw | delta | zstd | delta+zstd");
  cli.add_flag("files-per-chunk", "1024", "files per v2 chunk");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().size() != 2) {
    std::cerr << "pack: need <trace.csv> <trace.mct>\n";
    return 1;
  }
  store::WriterOptions options;
  if (!writer_options_from_cli(cli, "pack", options)) return 1;
  const trace::RequestTrace tr = trace::load_trace(cli.positional()[0]);
  store::pack_trace(tr, cli.positional()[1], options);
  std::cout << "packed " << tr.file_count() << " files x " << tr.days()
            << " days (" << tr.groups().size() << " groups) into "
            << cli.positional()[1] << " (codec " << cli.str("codec") << ")\n";
  return 0;
}

int cmd_unpack(int argc, const char* const* argv) {
  util::Cli cli("tracepack unpack", "expand a .mct container back to CSV");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().size() != 2) {
    std::cerr << "unpack: need <trace.mct> <trace.csv>\n";
    return 1;
  }
  const store::TraceReader reader(cli.positional()[0]);
  trace::save_trace(reader.materialize(), cli.positional()[1]);
  std::cout << "unpacked " << reader.file_count() << " files to "
            << cli.positional()[1] << "\n";
  return 0;
}

int cmd_info(int argc, const char* const* argv) {
  util::Cli cli("tracepack info", "describe a .mct container");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "info: need a .mct file\n";
    return 1;
  }
  const store::TraceReader reader(cli.positional().front());
  const store::Header& h = reader.header();
  const auto size_cell = [](std::uint64_t bytes) {
    return util::format_double(static_cast<double>(bytes) / (1024.0 * 1024.0),
                               2) +
           " MiB (" + util::format_count(bytes) + " B)";
  };
  util::Table table({"field", "value"});
  table.add_row({"format version", std::to_string(h.version)});
  if (reader.is_v2()) {
    const store::HeaderV2Ext& ext = reader.v2_ext();
    table.add_row({"codec",
                   std::string(codec::reserved_codec_name(ext.codec_id)) +
                       " (id " + std::to_string(ext.codec_id) + ")"});
    table.add_row({"chunks", util::format_count(ext.chunk_count) + " x " +
                                 util::format_count(ext.files_per_chunk) +
                                 " files"});
  } else {
    table.add_row({"codec", "v1/raw"});
  }
  table.add_row({"days", std::to_string(h.days)});
  table.add_row({"files", util::format_count(h.file_count)});
  table.add_row({"co-request groups", util::format_count(h.group_count)});
  table.add_row({"series stride", std::to_string(h.series_stride) + " B"});
  table.add_row({"frequency section", size_cell(h.freq_bytes)});
  if (reader.is_v2()) {
    table.add_row({"frequency decoded", size_cell(reader.freq_raw_bytes())});
    table.add_row(
        {"compression ratio",
         h.freq_bytes == 0
             ? "n/a"
             : util::format_double(static_cast<double>(reader.freq_raw_bytes()) /
                                       static_cast<double>(h.freq_bytes),
                                   2) +
                   "x"});
    table.add_row({"chunk table", size_cell(reader.v2_ext().chunk_table_bytes)});
  }
  table.add_row({"file table", size_cell(h.file_table_bytes)});
  table.add_row({"name blob", size_cell(h.names_bytes)});
  table.add_row({"group section", size_cell(h.groups_bytes)});
  table.add_row({"container size", size_cell(h.total_bytes)});
  std::cout << cli.positional().front() << ":\n" << table.to_string();
  return 0;
}

int cmd_verify(int argc, const char* const* argv) {
  util::Cli cli("tracepack verify", "full checksum scan of a .mct container");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "verify: need a .mct file\n";
    return 1;
  }
  // Opening already validates structure + metadata checksums; this pages in
  // and checks the frequency section too.
  const store::TraceReader reader(cli.positional().front());
  reader.verify_checksums();
  std::cout << cli.positional().front() << ": OK ("
            << util::format_count(reader.file_count()) << " files x "
            << reader.days() << " days, all checksums match)\n";
  return 0;
}

int cmd_generate(int argc, const char* const* argv) {
  util::Cli cli("tracepack generate",
                "stream a synthetic workload straight into a .mct container");
  cli.add_flag("files", "100000", "number of data files");
  cli.add_flag("days", "62", "horizon in days");
  cli.add_flag("seed", "42", "generator seed");
  cli.add_flag("chunk", "16384", "files generated per chunk");
  cli.add_flag("groups", "false",
               "include co-request groups (whole-trace construct: forces "
               "in-memory generation)");
  cli.add_flag("out", "trace.mct", "output container");
  cli.add_flag("codec", "v1",
               "container codec: v1 (uncompressed version 1 layout) or a v2 "
               "chunk codec: raw | delta | zstd | delta+zstd");
  cli.add_flag("files-per-chunk", "1024", "files per v2 chunk");
  cli.add_flag("integral-counts", "false",
               "round the synthetic request counts to whole requests (what "
               "real count data looks like; lets the delta codec engage)");
  if (!cli.parse(argc, argv)) return 1;

  trace::SyntheticConfig config;
  config.file_count = static_cast<std::size_t>(cli.integer("files"));
  config.days = static_cast<std::size_t>(cli.integer("days"));
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  config.integral_counts = cli.boolean("integral-counts");
  store::WriterOptions options;
  if (!writer_options_from_cli(cli, "generate", options)) return 1;

  if (cli.boolean("groups")) {
    store::pack_trace(trace::generate_synthetic(config), cli.str("out"),
                      options);
  } else {
    config.grouped_file_fraction = 0.0;
    store::TraceWriter writer(cli.str("out"), config.days, options);
    const auto chunk = static_cast<std::size_t>(cli.integer("chunk"));
    for (std::size_t first = 0; first < config.file_count; first += chunk) {
      const std::size_t count = std::min(chunk, config.file_count - first);
      for (const trace::FileRecord& f :
           trace::generate_synthetic_files(config, first, count))
        writer.add_file(f.name, f.size_gb, f.reads, f.writes);
    }
    writer.finish();
  }
  std::cout << "generated " << cli.str("files") << " files x "
            << cli.str("days") << " days into " << cli.str("out")
            << " (peak RSS " << util::format_double(peak_rss_mib(), 1)
            << " MiB)\n";
  return 0;
}

int cmd_eval(int argc, const char* const* argv) {
  util::Cli cli("tracepack eval",
                "bill a tiering policy shard-streamed over a .mct container");
  cli.add_flag("policy", "greedy", "hot | cold | greedy | optimal | mpc");
  cli.add_flag("shard-files", "65536", "files per shard (0 = one shard)");
  cli.add_flag("start", "0", "first billed day (default: last 35 days)");
  cli.add_flag("preset", "azure", "price preset");
  cli.add_flag("compare", "false",
               "also run the monolithic in-memory path and check the merged "
               "bill is byte-identical");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "eval: need a .mct file\n";
    return 1;
  }

  util::Stopwatch eval_watch;
  const store::TraceReader reader(cli.positional().front());
  const pricing::PricingPolicy prices = make_prices(cli.str("preset"));
  std::unique_ptr<core::TieringPolicy> policy = make_policy(cli.str("policy"));
  if (!policy) {
    std::cerr << "eval: unknown policy '" << cli.str("policy") << "'\n";
    return 1;
  }

  core::ShardEvalOptions options;
  options.shard_files = static_cast<std::size_t>(cli.integer("shard-files"));
  options.start_day =
      cli.integer("start") > 0
          ? static_cast<std::size_t>(cli.integer("start"))
          : (reader.days() > 35 ? reader.days() - 35 : 1);
  const core::ShardEvalResult sharded =
      core::run_policy_sharded(reader, prices, *policy, options);

  const auto& total = sharded.report.grand_total();
  util::Table bill({"component", "amount"});
  bill.add_row({"storage (Cs)", util::format_money(total.storage)});
  bill.add_row({"reads (Cr)", util::format_money(total.read)});
  bill.add_row({"writes (Cw)", util::format_money(total.write)});
  bill.add_row({"tier changes (Cc)", util::format_money(total.change)});
  bill.add_row({"total", util::format_money(total.total())});
  std::cout << sharded.policy_name << " over days " << options.start_day
            << ".." << reader.days() << " (" << prices.name() << ", "
            << sharded.shard_count << " shards):\n"
            << bill.to_string() << "tier changes: "
            << util::format_count(sharded.report.tier_changes())
            << ", decision time: "
            << util::format_double(sharded.decision_seconds, 2)
            << "s, peak RSS: " << util::format_double(peak_rss_mib(), 1)
            << " MiB\n";

  int exit_code = 0;
  bool compared_identical = true;
  // The comparison must not be able to lose the run report below: the
  // sharded numbers above are already measured, and a CI triage of a
  // comparison failure needs exactly that artifact. Any throw here (the
  // monolithic materialize is the one allocation-heavy step in this
  // command) downgrades to a failed comparison instead of propagating.
  if (cli.boolean("compare")) {
    try {
      const trace::RequestTrace tr = reader.materialize();
      core::PlanOptions mono;
      mono.start_day = options.start_day;
      mono.initial_tiers =
          core::static_initial_tiers(tr, prices, mono.start_day);
      const core::PlanResult reference =
          core::run_policy(tr, prices, *policy, mono);
      const auto& a = sharded.report.grand_total();
      const auto& b = reference.report.grand_total();
      bool identical = std::memcmp(&a, &b, sizeof a) == 0 &&
                       sharded.report.tier_changes() ==
                           reference.report.tier_changes();
      for (std::size_t f = 0; identical && f < tr.file_count(); ++f)
        identical =
            sharded.report.file_total(f) == reference.report.file_total(f);
      std::cout << "monolithic comparison: "
                << (identical ? "byte-identical" : "MISMATCH") << "\n";
      compared_identical = identical;
    } catch (const std::exception& error) {
      std::cerr << "eval: monolithic comparison failed: " << error.what()
                << "\n";
      compared_identical = false;
    }
    exit_code = compared_identical ? 0 : 1;
  }

  // Run report for the CI perf gate: eval wall time, decision time, and
  // every obs counter/timer this process touched (shard merge, trace I/O,
  // billing). Lands in MINICOST_OUT next to the bench reports.
  obs::RunReport report = obs::make_report("tracepack_eval");
  report.metrics.emplace_back("eval_seconds", eval_watch.seconds());
  report.metrics.emplace_back("decision_seconds", sharded.decision_seconds);
  report.metrics.emplace_back("shards",
                              static_cast<double>(sharded.shard_count));
  report.metrics.emplace_back("total_cost", total.total());
  if (cli.boolean("compare"))
    report.metrics.emplace_back("bills_identical",
                                compared_identical ? 1.0 : 0.0);
  const std::filesystem::path out_dir =
      util::env_str("MINICOST_OUT", "bench_out");
  std::cout << "[report] " << obs::write_report(report, out_dir).string()
            << "\n";
  return exit_code;
}

void usage() {
  std::cout << "tracepack <command> [flags]\n\ncommands:\n"
               "  pack      convert a CSV trace to a .mct container\n"
               "  unpack    expand a .mct container back to CSV\n"
               "  info      describe a .mct container\n"
               "  verify    full checksum scan\n"
               "  generate  stream a synthetic workload into a container\n"
               "  eval      bill a policy shard-streamed over a container\n"
               "\nrun `tracepack <command> --help` for per-command flags\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  try {
    if (command == "pack") return cmd_pack(sub_argc, sub_argv);
    if (command == "unpack") return cmd_unpack(sub_argc, sub_argv);
    if (command == "info") return cmd_info(sub_argc, sub_argv);
    if (command == "verify") return cmd_verify(sub_argc, sub_argv);
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "eval") return cmd_eval(sub_argc, sub_argv);
  } catch (const std::exception& error) {
    std::cerr << "tracepack " << command << ": " << error.what() << "\n";
    return 1;
  }
  usage();
  return command == "--help" || command == "-h" ? 0 : 1;
}
