#!/usr/bin/env python3
"""AST-level determinism-contract checker for the MiniCost tree.

tools/lint_contract.py greps for token-level hazards; this tool checks the
*semantic* half of the contract (DESIGN.md §7/§9/§12) — the violations a
grep cannot see because they hide behind typedefs, member types, call
chains, or the build graph:

  billing-exact-sum    a `double` compound accumulation (`+=`/`-=`) in code
                       reachable from StorageSimulator / BillingReport /
                       merge_shard must go through stats::ExactSum, or carry
                       a written order-independence argument. Reachability is
                       computed over the call graph (restricted to the
                       src/sim + src/stats universe, where bill state lives),
                       so e.g. CostBreakdown::operator+= is checked because
                       BillingReport::refresh() calls it — no token in that
                       operator mentions billing at all.
  rng-flow             construction of a std:: random engine (mt19937,
                       default_random_engine, random_device, ...) anywhere
                       outside src/util/rng.*, resolved through type aliases
                       (`using Engine = std::mt19937; Engine e;` is caught),
                       and propagated over the call graph: a call to a helper
                       function that constructs an engine is flagged at the
                       call site too.
  unordered-iteration  a range-for whose range expression's type resolves —
                       through aliases, member types, auto initializers, or
                       function return types — to a std::unordered_*
                       container, in any translation unit linked into
                       minicost_core (the link closure is parsed from the
                       src/*/CMakeLists.txt build graph, not hardcoded).
                       Hash-iteration order is unspecified, so planning and
                       billing results would depend on hashing details of
                       the build.
  lock-pool-callback   inside a method of a class with MC_GUARDED_BY-
                       annotated members, while a scoped lock is held, a call
                       back into the thread pool (submit / parallel_for /
                       materialize_shard_async) or a blocking future
                       get()/wait(). The help-while-waiting pool executes
                       queued tasks from inside blocking waits — re-entering
                       it with a mutex held is a lock-inversion deadlock
                       waiting for load (DESIGN.md §8).

Frontends: the rule engine runs on a backend-neutral "semantic facts" model
(declared types, alias tables, call edges, lock-held regions), so the C++
frontend is pluggable:

  --frontend=builtin  the bundled micro-frontend: tokenizer + scope/type/
                      call-graph extractor, stdlib-only. The *reference*
                      backend — the fixture suite in tests/lint/ pins it.
  --frontend=clang    libclang (python clang.cindex) over
                      compile_commands.json where installed; parses real
                      ASTs, so it also sees through macros and overload
                      resolution. Falls back to builtin with a warning when
                      libclang is unavailable.
  --frontend=auto     clang if importable, else builtin.

The default is builtin: lint verdicts must not depend on what happens to be
installed on the machine running them.

The translation-unit set comes from compile_commands.json (pass
--compile-commands or let it find build/compile_commands.json); without one
it falls back to globbing src/ tools/ bench/. Headers under those trees are
always indexed so cross-file aliases and member types resolve.

Suppression syntax — same line or the line directly above, reason mandatory:

    // lint-ast: allow(<rule-id>) -- <reason>

A suppression whose line no longer triggers its rule is itself an error
(stale-suppression), so silenced findings cannot outlive the code they
silenced. Suppressions naming an unknown rule id are errors too.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULE_IDS = (
    "billing-exact-sum",
    "rng-flow",
    "unordered-iteration",
    "lock-pool-callback",
)

SUPPRESS_RE = re.compile(
    r"lint-ast:\s*allow\((?P<rule>[A-Za-z0-9_-]+)\)"
    r"(?:\s*(?:--|—|:)\s*(?P<reason>\S.*))?"
)

RNG_ENGINE_TYPES = {
    "std::mt19937", "std::mt19937_64", "std::minstd_rand",
    "std::minstd_rand0", "std::default_random_engine", "std::ranlux24",
    "std::ranlux48", "std::ranlux24_base", "std::ranlux48_base",
    "std::knuth_b", "std::random_device",
}

LOCK_TYPE_RE = re.compile(
    r"\b(MutexLock|lock_guard|scoped_lock|unique_lock)\b")

POOL_CALLEES = {"submit", "parallel_for", "materialize_shard_async"}
FUTURE_BLOCKERS = {"get", "wait", "wait_for", "wait_until"}

RNG_EXEMPT_RE = re.compile(r"(^|/)src/util/rng\.(cpp|hpp)$")
BILLING_DIR_RE = re.compile(r"(^|/)src/(sim|stats)/")

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "decltype", "default", "delete", "do", "double", "else", "enum",
    "explicit", "extern", "false", "final", "float", "for", "friend", "goto",
    "if", "inline", "int", "long", "mutable", "namespace", "new", "noexcept",
    "nullptr", "operator", "override", "private", "protected", "public",
    "register", "return", "short", "signed", "sizeof", "static",
    "static_assert", "static_cast", "const_cast", "dynamic_cast",
    "reinterpret_cast", "struct", "switch", "template", "this", "throw",
    "true", "try", "typedef", "typename", "union", "unsigned", "using",
    "virtual", "void", "volatile", "while",
}

TYPE_KEYWORDS = {
    "auto", "bool", "char", "double", "float", "int", "long", "short",
    "signed", "unsigned", "void", "wchar_t",
}

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else",
                    "try"}

SPECIFIERS = {
    "const", "constexpr", "constinit", "static", "inline", "virtual",
    "explicit", "friend", "mutable", "volatile", "typename", "extern",
    "register", "thread_local",
}


class Finding:
    def __init__(self, path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexing.
# --------------------------------------------------------------------------

def strip_code(text: str) -> list[str]:
    """Blanks comments, string/char literals, and preprocessor lines,
    preserving line structure. Handles /* */ across lines, raw strings, and
    backslash continuations of preprocessor lines."""
    lines = text.splitlines()
    out_lines: list[str] = []
    in_block = False
    continuation = False
    for line in lines:
        if continuation:
            continuation = line.rstrip().endswith("\\")
            out_lines.append("")
            continue
        if not in_block and re.match(r"\s*#", line):
            continuation = line.rstrip().endswith("\\")
            out_lines.append("")
            continue
        out = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch == "R" and nxt == '"':
                m = re.match(r'R"([^(]*)\(', line[i:])
                if m:
                    close = line.find(")" + m.group(1) + '"', i)
                    out.append('""')
                    i = n if close < 0 else close + len(m.group(1)) + 2
                    continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                out.append('""' if quote == '"' else "'x'")
                i += 1
                continue
            out.append(ch)
            i += 1
        out_lines.append("".join(out))
    return out_lines


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->|\+=|-=|\*=|/=|==|!=|<=|>=|&&|\|\||\+\+|--"
    r"|\[\[|\]\]|[0-9][\w.]*|\S"
)


@dataclass
class Tok:
    line: int
    text: str


def tokenize(code_lines: list[str]) -> list[Tok]:
    toks: list[Tok] = []
    for idx, line in enumerate(code_lines, start=1):
        for m in TOKEN_RE.finditer(line):
            toks.append(Tok(idx, m.group(0)))
    return toks


# --------------------------------------------------------------------------
# Semantic facts: the backend-neutral model both frontends produce.
#
# Expression references defer type resolution: the frontend records the base
# identifier (with its locally-declared raw type, if the base is a local or
# parameter) plus the postfix chain; the Index resolves members, element
# types, aliases, and return types at rule time, when every file's symbols
# are known.
# --------------------------------------------------------------------------

@dataclass
class ExprRef:
    base: str                      # leading identifier ('' if unresolvable)
    base_type: str | None          # raw declared type when base is a local
    suffix: tuple = ()             # (('member', m) | ('call', m) | ('elem',))
    text: str = ""                 # source-ish text, for messages


@dataclass
class CallSite:
    line: int
    name: str                      # unqualified callee
    qual: str                      # full '::'-joined chain ('' if bare)
    receiver: ExprRef | None       # None for free/qualified calls


@dataclass
class FunctionFacts:
    qname: str                     # "BillingReport::refresh", "merge_shard"
    name: str
    cls: str | None
    rel: str
    line: int
    calls: list = field(default_factory=list)          # [CallSite]
    compound_adds: list = field(default_factory=list)  # [(line, ExprRef)]
    constructions: list = field(default_factory=list)  # [(line, raw type)]
    range_fors: list = field(default_factory=list)     # [(line, ExprRef)]
    locked_calls: list = field(default_factory=list)   # [CallSite]


@dataclass
class ClassFacts:
    name: str
    rel: str
    members: dict = field(default_factory=dict)        # name -> raw type
    guarded: bool = False
    method_returns: dict = field(default_factory=dict)  # name -> return type


@dataclass
class FileFacts:
    rel: str
    aliases: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    functions: list = field(default_factory=list)
    global_vars: dict = field(default_factory=dict)
    free_returns: dict = field(default_factory=dict)


# --------------------------------------------------------------------------
# Builtin frontend.
# --------------------------------------------------------------------------

class _Scope:
    __slots__ = ("kind", "name", "access", "locals", "locks", "fn")

    def __init__(self, kind, name="", access="private", fn=None):
        self.kind = kind      # namespace | class | function | block
        self.name = name
        self.access = access
        self.locals: dict[str, str] = {}
        self.locks: list[str] = []
        self.fn = fn          # FunctionFacts of the enclosing function


def _is_macroish(name: str) -> bool:
    return name.startswith("MC_") or bool(re.fullmatch(r"[A-Z][A-Z0-9_]{2,}",
                                                       name))


def _extra_declarators(tail: list[str]) -> list[str]:
    """`double a, b, c;` — the names after the first declarator."""
    names = []
    depth = 0
    expect = False
    for t in tail:
        if t in ("(", "[", "{", "<"):
            depth += 1
        elif t in (")", "]", "}", ">"):
            depth = max(0, depth - 1)
        elif depth == 0:
            if t == ",":
                expect = True
                continue
            if expect and re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS:
                names.append(t)
            expect = False
    return names


def _type_chain_ok(tok: str) -> bool:
    return (tok == "::" or tok == "<" or tok == ">" or tok == "," or
            tok == "&" or tok == "*" or tok == "&&" or
            tok in SPECIFIERS or tok in TYPE_KEYWORDS or
            (tok not in KEYWORDS and re.match(r"[A-Za-z_]\w*$", tok)
             is not None))


class BuiltinFrontend:
    """Statement scanner with a scope stack. Not a C++ parser: it recognizes
    the declaration/definition shapes the clang-formatted MiniCost style
    produces, and degrades to opaque statements (never crashes) elsewhere."""

    def __init__(self, rel: str, text: str):
        self.rel = rel
        self.toks = tokenize(strip_code(text))
        self.facts = FileFacts(rel=rel)
        self.i = 0
        self.scopes: list[_Scope] = [_Scope("namespace", "")]

    # -- driving ---------------------------------------------------------

    def run(self) -> FileFacts:
        while self.i < len(self.toks):
            stmt, term = self._collect_statement()
            if term == "}":
                if stmt:
                    self._process_statement(stmt)
                if len(self.scopes) > 1:
                    self.scopes.pop()
                continue
            if term == "{":
                self._open_scope(stmt)
                continue
            if stmt:
                self._process_statement(stmt)
        return self.facts

    def _collect_statement(self):
        toks: list[Tok] = []
        depth = 0
        while self.i < len(self.toks):
            t = self.toks[self.i]
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                depth = max(0, depth - 1)
            elif depth == 0:
                if t.text == ";":
                    self.i += 1
                    return toks, ";"
                if t.text == "}":
                    self.i += 1
                    return toks, "}"
                if t.text == "{":
                    prev = toks[-1].text if toks else ""
                    if prev in {")", "const", "noexcept", "override", "final",
                                "try", "else", "do"} or \
                            self._heads_scope(toks):
                        self.i += 1
                        return toks, "{"
                    # Initializer braces: consume the balanced group inline.
                    bd = 0
                    while self.i < len(self.toks):
                        tt = self.toks[self.i]
                        toks.append(tt)
                        if tt.text == "{":
                            bd += 1
                        elif tt.text == "}":
                            bd -= 1
                            if bd == 0:
                                break
                        self.i += 1
                    self.i += 1
                    continue
            toks.append(t)
            self.i += 1
        return toks, ";"

    def _heads_scope(self, toks: list[Tok]) -> bool:
        if not toks:
            return True
        return toks[0].text in {"namespace", "class", "struct", "enum",
                                "union", "extern"} or \
            toks[0].text in CONTROL_KEYWORDS

    # -- scope opening ---------------------------------------------------

    def _open_scope(self, stmt: list[Tok]) -> None:
        fn = self.scopes[-1].fn
        texts = [t.text for t in stmt]
        if texts and texts[0] == "template":
            stmt = self._strip_template(stmt)
            texts = [t.text for t in stmt]
        if not stmt:
            self.scopes.append(_Scope("block", fn=fn))
            return
        head = texts[0]
        if head == "namespace":
            name = texts[1] if len(texts) > 1 and \
                re.match(r"[A-Za-z_]\w*$", texts[1]) else ""
            self.scopes.append(_Scope("namespace", name, fn=None))
            return
        if head == "enum":
            self.scopes.append(_Scope("block", fn=fn))
            return
        if head in ("class", "struct", "union"):
            name = self._class_name(stmt)
            access = "public" if head != "class" else "private"
            self.scopes.append(_Scope("class", name, access))
            if name and name not in self.facts.classes:
                self.facts.classes[name] = ClassFacts(name=name, rel=self.rel)
            return
        if head in CONTROL_KEYWORDS:
            if head == "for":
                self._record_range_for(stmt, fn)
            if fn is not None:
                self._scan_sites(stmt, fn)
            self.scopes.append(_Scope("block", fn=fn))
            return
        # A '=' before the first top-level '(' means an initializer (e.g. a
        # lambda assigned to a local) rather than a function signature.
        eq_before_paren = False
        for t in texts:
            if t == "(":
                break
            if t == "=":
                eq_before_paren = True
                break
        if fn is not None and (eq_before_paren or "(" not in texts):
            self._process_statement(stmt)
            self.scopes.append(_Scope("block", fn=fn))
            return
        if "(" in texts and not eq_before_paren:
            self._open_function(stmt)
            return
        self.scopes.append(_Scope("block", fn=fn))

    def _strip_template(self, stmt: list[Tok]) -> list[Tok]:
        depth = 0
        for j in range(1, len(stmt)):
            if stmt[j].text == "<":
                depth += 1
            elif stmt[j].text == ">":
                depth -= 1
                if depth == 0:
                    return stmt[j + 1:]
        return []

    def _class_name(self, stmt: list[Tok]) -> str:
        j = 1
        name = ""
        while j < len(stmt):
            t = stmt[j].text
            if t == ":":
                break
            if t == "[[":
                while j < len(stmt) and stmt[j].text != "]]":
                    j += 1
                j += 1
                continue
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS:
                if _is_macroish(t):
                    # Skip attribute-like macros, with or without arguments.
                    if j + 1 < len(stmt) and stmt[j + 1].text == "(":
                        depth = 0
                        while j < len(stmt):
                            if stmt[j].text == "(":
                                depth += 1
                            elif stmt[j].text == ")":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                    j += 1
                    continue
                name = t
                j += 1
                continue
            j += 1
        return name

    def _open_function(self, stmt: list[Tok]) -> None:
        texts = [t.text for t in stmt]
        # Name = token before the first top-level '('.
        paren = -1
        depth = 0
        for j, t in enumerate(texts):
            if t == "<":
                depth += 1
            elif t == ">":
                depth = max(0, depth - 1)
            elif t == "(" and depth == 0:
                paren = j
                break
        if paren <= 0:
            self.scopes.append(_Scope("block", fn=self.scopes[-1].fn))
            return
        name = texts[paren - 1]
        name_at = paren - 1
        if name_at >= 1 and texts[name_at - 1] == "operator":
            name = "operator" + name
            name_at -= 1
        elif name == "]" and "operator" in texts[:paren]:
            name_at = texts.index("operator")
            name = "operator[]"
        elif name_at >= 1 and texts[name_at - 1] == "~":
            name = "~" + name
            name_at -= 1
        cls = None
        if name_at >= 2 and texts[name_at - 1] == "::" and \
                re.match(r"[A-Za-z_]\w*$", texts[name_at - 2]):
            cls = texts[name_at - 2]
            name_at -= 2
        scope_cls = self._enclosing_class_name()
        if cls is None:
            cls = scope_cls
        ret = self._canon_type(texts[:name_at])
        fn = FunctionFacts(
            qname=f"{cls}::{name}" if cls else name,
            name=name, cls=cls, rel=self.rel, line=stmt[0].line)
        self.facts.functions.append(fn)
        if cls:
            cf = self.facts.classes.setdefault(
                cls, ClassFacts(name=cls, rel=self.rel))
            if ret:
                cf.method_returns.setdefault(name, ret)
        elif ret:
            self.facts.free_returns.setdefault(name, ret)
        scope = _Scope("function", name, fn=fn)
        for pname, ptype in self._parse_params(stmt, paren):
            scope.locals[pname] = ptype
        self.scopes.append(scope)

    def _enclosing_class_name(self) -> str | None:
        for s in reversed(self.scopes):
            if s.kind == "class":
                return s.name
        return None

    def _parse_params(self, stmt: list[Tok], paren: int):
        depth = 0
        group: list[Tok] = []
        for t in stmt[paren:]:
            if t.text == "(":
                depth += 1
                if depth == 1:
                    continue
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1:
                group.append(t)
        params = []
        cur: list[Tok] = []
        depth = 0
        for t in group + [Tok(0, ",")]:
            if t.text in ("<", "(", "["):
                depth += 1
            elif t.text in (">", ")", "]"):
                depth = max(0, depth - 1)
            if t.text == "," and depth == 0:
                if cur:
                    params.append(cur)
                cur = []
                continue
            cur.append(t)
        out = []
        for p in params:
            texts = [t.text for t in p]
            if "=" in texts:
                texts = texts[:texts.index("=")]
            ids = [j for j, t in enumerate(texts)
                   if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS]
            if len(ids) >= 2 or (ids and texts[ids[-1] - 1:ids[-1]] in
                                 (["&"], ["*"], [">"], ["&&"])):
                j = ids[-1]
                # The last identifier is the parameter name only if it is not
                # part of a qualified type chain tail like `std::size_t`.
                if j > 0 and texts[j - 1] == "::":
                    continue
                out.append((texts[j], self._canon_type(texts[:j])))
        return out

    # -- statement processing -------------------------------------------

    def _process_statement(self, stmt: list[Tok]) -> None:
        texts = [t.text for t in stmt]
        # Access labels prefix the next declaration in token stream order.
        while len(texts) >= 2 and texts[0] in ("public", "private",
                                               "protected") and \
                texts[1] == ":":
            if self.scopes[-1].kind == "class":
                self.scopes[-1].access = texts[0]
            stmt = stmt[2:]
            texts = texts[2:]
        if not stmt:
            return
        if texts[0] == "template":
            stmt = self._strip_template(stmt)
            texts = [t.text for t in stmt]
            if not stmt:
                return
        if texts[0] == "using" and "=" in texts:
            eq = texts.index("=")
            if eq >= 2 and re.match(r"[A-Za-z_]\w*$", texts[eq - 1]):
                self.facts.aliases[texts[eq - 1]] = \
                    self._canon_type(texts[eq + 1:])
            return
        if texts[0] == "typedef":
            if len(texts) >= 3 and re.match(r"[A-Za-z_]\w*$", texts[-1]):
                self.facts.aliases[texts[-1]] = \
                    self._canon_type(texts[1:-1])
            return
        if texts[0] == "using":  # using-declaration / using namespace
            return
        scope = self.scopes[-1]
        fn = scope.fn
        decl = self._find_decl(stmt)
        if scope.kind == "class":
            self._process_class_member(stmt, texts, decl)
            return
        if fn is None:
            if decl is not None:
                kind, type_str, name, _ = decl
                if kind == "var":
                    self.facts.global_vars[name] = type_str
                elif kind == "callable":
                    self.facts.free_returns.setdefault(name, type_str)
            return
        # Function body statement.
        if texts[0] == "for":
            self._record_range_for(stmt, fn)
        if decl is not None and decl[0] in ("var", "callable"):
            kind, type_str, name, tail = decl
            # `Type name(args);` in a body is a construction, not a decl of
            # a callable — the class-scope ambiguity does not exist here.
            for local in [name] + _extra_declarators(tail):
                scope.locals[local] = type_str
            if LOCK_TYPE_RE.search(type_str):
                scope.locks.append(name)
            fn.constructions.append((stmt[0].line, type_str))
            if type_str == "auto" and tail:
                scope.locals[name] = "auto=" + " ".join(tail)
        self._scan_sites(stmt, fn)

    def _process_class_member(self, stmt, texts, decl) -> None:
        cls_scope = self.scopes[-1]
        cf = self.facts.classes.setdefault(
            cls_scope.name, ClassFacts(name=cls_scope.name, rel=self.rel))
        if decl is None:
            return
        kind, type_str, name, tail = decl
        if kind == "callable":
            cf.method_returns.setdefault(name, type_str)
            return
        for member in [name] + _extra_declarators(tail):
            cf.members[member] = type_str
        if "MC_GUARDED_BY" in texts or "MC_PT_GUARDED_BY" in texts:
            cf.guarded = True

    def _find_decl(self, stmt: list[Tok]):
        """Recognizes `TYPE NAME ...` declarations. Returns
        (kind, type, name, tail_texts) with kind 'var' or 'callable'
        (callable = NAME directly followed by '(' holding type-ish tokens,
        i.e. a function declaration at class/namespace scope)."""
        texts = [t.text for t in stmt]
        if not texts or texts[0] in KEYWORDS and \
                texts[0] not in TYPE_KEYWORDS and texts[0] not in SPECIFIERS:
            return None
        depth = 0
        prev_ok = False
        for j, t in enumerate(texts):
            if t in ("<",):
                depth += 1
                continue
            if t in (">",):
                depth = max(0, depth - 1)
                continue
            if depth > 0:
                continue
            if t in ("(", "["):
                return None
            is_ident = bool(re.match(r"[A-Za-z_]\w*$", t)) and \
                t not in KEYWORDS
            if is_ident and prev_ok and j > 0 and texts[j - 1] != "::" and \
                    not _is_macroish(t):
                follow = texts[j + 1] if j + 1 < len(texts) else ";"
                if follow in (";", "=", "{", "(", "[", ",") or \
                        _is_macroish(follow):
                    type_str = self._canon_type(texts[:j])
                    if not type_str:
                        return None
                    tail = texts[j + 1:]
                    if follow == "(" and self.scopes[-1].kind != "function" \
                            and self.scopes[-1].fn is None:
                        return ("callable", type_str, t, tail)
                    if follow == "=" and tail:
                        tail = tail[1:]
                    return ("var", type_str, t, tail)
                return None
            if t == ",":
                continue
            prev_ok = (is_ident and not _is_macroish(t)) or \
                t in (">", "&", "*", "&&") or t in TYPE_KEYWORDS
            if t not in SPECIFIERS and not _type_chain_ok(t):
                return None
        return None

    def _canon_type(self, texts: list[str]) -> str:
        parts = [t for t in texts
                 if t not in SPECIFIERS and t not in ("&", "*", "&&")]
        return "".join(parts)

    # -- expression sites ------------------------------------------------

    def _record_range_for(self, stmt: list[Tok], fn) -> None:
        if fn is None:
            return
        depth = 0
        colon = -1
        end = -1
        for j, t in enumerate(stmt):
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                depth -= 1
                if depth == 0:
                    end = j
                    break
            elif t.text == ":" and depth == 1:
                colon = j
        if colon < 0 or end <= colon:
            return
        expr = stmt[colon + 1:end]
        ref = self._expr_ref(expr)
        if ref is not None:
            fn.range_fors.append((stmt[colon].line, ref))

    def _expr_ref(self, toks: list[Tok]) -> ExprRef | None:
        texts = [t.text for t in toks]
        while texts and texts[0] in ("*", "&", "("):
            texts = texts[1:]
        while texts and texts[-1] == ")" and \
                texts.count("(") < texts.count(")"):
            texts = texts[:-1]
        if not texts:
            return None
        j = 0
        base = texts[0]
        if base == "this":
            j = 1
            if j < len(texts) and texts[j] == "->":
                j += 1
                if j < len(texts):
                    base = texts[j]
                    j += 1
                else:
                    return None
            else:
                return None
        elif re.match(r"[A-Za-z_]\w*$", base) and base not in KEYWORDS:
            # Swallow a leading qualified chain: keep the full chain as base
            # so `std::mt19937(...)` and `ns::helper(...)` stay recognizable.
            j = 1
            while j + 1 < len(texts) and texts[j] == "::" and \
                    re.match(r"[A-Za-z_]\w*$", texts[j + 1]):
                base = base + "::" + texts[j + 1]
                j += 2
        else:
            return None
        base_type = self._lookup_local(base)
        suffix = []
        while j < len(texts):
            t = texts[j]
            if t in (".", "->"):
                if j + 1 < len(texts) and \
                        re.match(r"[A-Za-z_]\w*$", texts[j + 1]):
                    m = texts[j + 1]
                    if j + 2 < len(texts) and texts[j + 2] == "(":
                        if m in ("at", "front", "back"):
                            suffix.append(("elem",))
                        else:
                            suffix.append(("call", m))
                        j = self._skip_group(texts, j + 2)
                        continue
                    suffix.append(("member", m))
                    j += 2
                    continue
                break
            if t == "[":
                suffix.append(("elem",))
                j = self._skip_group(texts, j)
                continue
            if t == "(":
                suffix.append(("invoke",))
                j = self._skip_group(texts, j)
                continue
            break
        return ExprRef(base=base, base_type=base_type, suffix=tuple(suffix),
                       text=" ".join(texts))

    def _trailing_chain(self, toks: list[Tok]) -> list[Tok]:
        """Longest postfix-expression chain ending the token list: walks
        backwards over identifiers, '::', '.', '->', 'this', and balanced
        ()/[] groups, stopping at anything else."""
        k = len(toks) - 1
        start = len(toks)
        while k >= 0:
            t = toks[k].text
            if t in ("]", ")"):
                opener = "[" if t == "]" else "("
                depth = 0
                while k >= 0:
                    if toks[k].text == t:
                        depth += 1
                    elif toks[k].text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    k -= 1
                if k < 0:
                    break
                start = k
                k -= 1
                continue
            if t in (".", "->", "::"):
                k -= 1
                continue
            if t == "this" or (re.match(r"[A-Za-z_]\w*$", t) and
                               t not in KEYWORDS):
                start = k
                k -= 1
                if k >= 0 and toks[k].text not in (".", "->", "::"):
                    break
                continue
            break
        return toks[start:]

    def _skip_group(self, texts: list[str], j: int) -> int:
        opener = texts[j]
        closer = {"(": ")", "[": "]", "{": "}"}[opener]
        depth = 0
        while j < len(texts):
            if texts[j] == opener:
                depth += 1
            elif texts[j] == closer:
                depth -= 1
                if depth == 0:
                    return j + 1
            j += 1
        return j

    def _lookup_local(self, name: str) -> str | None:
        if "::" in name:
            return None
        for s in reversed(self.scopes):
            if name in s.locals:
                return s.locals[name]
        return None

    def _locks_held(self) -> bool:
        return any(s.locks for s in self.scopes)

    def _scan_sites(self, stmt: list[Tok], fn: FunctionFacts) -> None:
        texts = [t.text for t in stmt]
        # Compound adds: trim the statement back to the postfix chain that
        # feeds the operator, so `for (...) x += y;` sees `x`, not `for`.
        depth = 0
        for j, t in enumerate(texts):
            if t in ("(", "["):
                depth += 1
            elif t in (")", "]"):
                depth = max(0, depth - 1)
            elif depth == 0 and t in ("+=", "-="):
                lhs = self._trailing_chain(stmt[:j])
                ref = self._expr_ref(lhs)
                if ref is not None:
                    fn.compound_adds.append((stmt[j].line, ref))
        # Calls: IDENT '(' (and brace-temporaries of qualified chains).
        locked = self._locks_held()
        j = 0
        while j < len(texts) - 1:
            t = texts[j]
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS and \
                    not _is_macroish(t) and texts[j + 1] in ("(", "{"):
                if texts[j + 1] == "{" and (j + 1 >= len(texts) or
                                            "::" not in texts[max(0, j - 2):
                                                             j]):
                    j += 1
                    continue
                # Qualified chain backwards.
                start = j
                chain = [t]
                k = j - 1
                while k >= 1 and texts[k] == "::" and \
                        re.match(r"[A-Za-z_]\w*$", texts[k - 1]):
                    chain.insert(0, texts[k - 1])
                    start = k - 1
                    k -= 2
                receiver = None
                if start >= 2 and texts[start - 1] in (".", "->"):
                    # Member call: if the receiver expression is too complex
                    # to resolve, keep a sentinel so it is NOT treated as an
                    # unqualified call (which would name-match everything).
                    receiver = self._receiver_ref(texts, start - 1) or \
                        ExprRef(base="", base_type=None, text="<unresolved>")
                qual = "::".join(chain) if len(chain) > 1 else ""
                site = CallSite(line=stmt[j].line, name=t, qual=qual,
                                receiver=receiver)
                fn.calls.append(site)
                if locked:
                    fn.locked_calls.append(site)
            j += 1

    def _receiver_ref(self, texts: list[str], dot: int) -> ExprRef | None:
        """Best-effort receiver before `.`/`->` at index dot: a simple
        identifier chain only; anything else is unresolved (None)."""
        k = dot - 1
        parts: list[str] = []
        while k >= 0:
            t = texts[k]
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS:
                parts.insert(0, t)
                if k >= 2 and texts[k - 1] in (".", "->", "::"):
                    k -= 2
                    continue
                break
            return None
        if not parts:
            return None
        base = parts[0]
        suffix = tuple(("member", p) for p in parts[1:])
        return ExprRef(base=base, base_type=self._lookup_local(base),
                       suffix=suffix, text=".".join(parts))


def extract_builtin(rel: str, text: str) -> FileFacts:
    return BuiltinFrontend(rel, text).run()


# --------------------------------------------------------------------------
# Whole-program index + type resolution.
# --------------------------------------------------------------------------

def _split_template_args(inner: str) -> list[str]:
    args, depth, cur = [], 0, []
    for ch in inner:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
            continue
        cur.append(ch)
    if cur:
        args.append("".join(cur))
    return args


class Index:
    def __init__(self, files: dict[str, FileFacts]):
        self.files = files
        self.aliases: dict[str, str] = {}
        self.classes: dict[str, ClassFacts] = {}
        self.free_returns: dict[str, str] = {}
        self.functions: list[FunctionFacts] = []
        self.global_vars: dict[str, str] = {}
        for ff in files.values():
            self.aliases.update(ff.aliases)
            for name, cf in ff.classes.items():
                if name in self.classes:
                    merged = self.classes[name]
                    merged.members.update(cf.members)
                    merged.method_returns.update(cf.method_returns)
                    merged.guarded = merged.guarded or cf.guarded
                else:
                    self.classes[name] = cf
            self.free_returns.update(ff.free_returns)
            self.functions.extend(ff.functions)
            self.global_vars.update(ff.global_vars)
        self.by_name: dict[str, list[FunctionFacts]] = {}
        for fn in self.functions:
            self.by_name.setdefault(fn.name, []).append(fn)

    # -- type machinery --------------------------------------------------

    def canonical(self, type_str: str | None) -> str:
        if not type_str:
            return ""
        t = type_str
        for _ in range(8):
            simple = t.split("<")[0].split("::")[-1]
            if simple in self.aliases:
                expansion = self.aliases[simple]
                if expansion == t:
                    break
                t = expansion
                continue
            break
        return t

    def class_of(self, type_str: str | None) -> ClassFacts | None:
        if not type_str:
            return None
        simple = self.canonical(type_str).split("<")[0].split("::")[-1]
        return self.classes.get(simple)

    def element_type(self, type_str: str) -> str | None:
        t = self.canonical(type_str)
        m = re.match(r"(?:std::)?(?:vector|span|deque|valarray|array)<(.*)>$",
                     t)
        if m:
            return _split_template_args(m.group(1))[0]
        m = re.match(r"(?:std::)?(?:map|unordered_map)<(.*)>$", t)
        if m:
            args = _split_template_args(m.group(1))
            return args[1] if len(args) > 1 else None
        return None

    def is_double(self, type_str: str | None) -> bool:
        return self.canonical(type_str) in {"double", "float", "longdouble"}

    def is_unordered(self, type_str: str | None) -> bool:
        t = self.canonical(type_str or "")
        return bool(re.search(r"\bunordered_(map|set|multimap|multiset)<", t))

    def is_rng_engine(self, type_str: str | None) -> bool:
        t = self.canonical(type_str or "").split("<")[0].split("(")[0]
        if not t:
            return False
        if not t.startswith("std::"):
            t = "std::" + t.split("::")[-1]
        return t in RNG_ENGINE_TYPES

    def resolve(self, ref: ExprRef | None, fn: FunctionFacts) -> str | None:
        """Resolves an expression reference to a raw type string, walking
        aliases, the enclosing class's members, globals, free-function
        return types, and container element types."""
        if ref is None:
            return None
        t = ref.base_type
        suffix = list(ref.suffix)
        if t is None:
            if ref.base == "this" or (fn.cls and ref.base == fn.cls):
                t = fn.cls
            else:
                cf = self.classes.get(fn.cls) if fn.cls else None
                if cf and ref.base in cf.members:
                    t = cf.members[ref.base]
                elif ref.base in self.global_vars:
                    t = self.global_vars[ref.base]
                elif suffix and suffix[0] == ("invoke",):
                    name = ref.base.split("::")[-1]
                    t = self.free_returns.get(name)
                    if t is None and cf:
                        t = cf.method_returns.get(name)
                    suffix = suffix[1:]
                else:
                    return None
        if t is not None and t.startswith("auto="):
            sub = t[len("auto="):].split()
            inner = BuiltinFrontend("", "")  # expression-only reuse
            ref2 = inner._expr_ref([Tok(0, x) for x in sub])
            t = self.resolve(ref2, fn) if ref2 else None
        for op in suffix:
            if t is None:
                return None
            if op == ("elem",):
                t = self.element_type(t)
                continue
            if op == ("invoke",):
                continue
            kind, name = op if len(op) == 2 else (op[0], "")
            cf = self.class_of(t)
            if cf is None:
                return None
            if kind == "member":
                t = cf.members.get(name)
            elif kind == "call":
                t = cf.method_returns.get(name)
            else:
                return None
        return t


# --------------------------------------------------------------------------
# Build-graph scoping: which directories are linked into minicost_core.
# --------------------------------------------------------------------------

def core_link_closure(root: Path) -> list[str] | None:
    """Returns repo-relative directory prefixes of every library in
    minicost_core's link closure (parsed from src/*/CMakeLists.txt), or None
    when the build graph is absent (then all of src/ is in scope)."""
    libs: dict[str, tuple[str, set[str]]] = {}
    for cml in sorted(root.glob("src/*/CMakeLists.txt")):
        try:
            text = cml.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        m = re.search(r"add_library\(\s*(minicost_\w+)", text)
        if not m:
            continue
        name = m.group(1)
        deps: set[str] = set()
        dm = re.search(r"target_link_libraries\s*\(\s*" + name +
                       r"\b([^)]*)\)", text, re.S)
        if dm:
            for dep in re.findall(r"minicost_\w+", dm.group(1)):
                if dep not in (name, "minicost_warnings",
                               "minicost_strict_warnings"):
                    deps.add(dep)
        rel_dir = cml.parent.relative_to(root).as_posix()
        libs[name] = (rel_dir, deps)
    if "minicost_core" not in libs:
        return None
    closure: set[str] = set()
    stack = ["minicost_core"]
    while stack:
        lib = stack.pop()
        if lib in closure or lib not in libs:
            continue
        closure.add(lib)
        stack.extend(libs[lib][1])
    return sorted(libs[lib][0] for lib in closure)


# --------------------------------------------------------------------------
# Rules.
# --------------------------------------------------------------------------

def _resolve_call_targets(index: Index, fn: FunctionFacts,
                          site: CallSite) -> list[FunctionFacts]:
    if site.qual:
        tail = site.qual.split("::")[-2:]
        out = []
        for cand in index.by_name.get(site.name, []):
            if cand.qname.endswith("::".join(tail)) or \
                    cand.qname == site.name:
                out.append(cand)
        return out
    if site.receiver is not None:
        recv_type = index.resolve(site.receiver, fn)
        cf = index.class_of(recv_type)
        if cf is not None:
            return [cand for cand in index.by_name.get(site.name, [])
                    if cand.cls == cf.name]
        return []
    # Unqualified call: prefer same-class methods (implicit this), then free
    # functions; only fall back to every name match when neither exists.
    cands = index.by_name.get(site.name, [])
    if fn.cls:
        same = [c for c in cands if c.cls == fn.cls]
        if same:
            return same
    free = [c for c in cands if c.cls is None]
    return free or cands


def rule_billing_exact_sum(index: Index) -> list[Finding]:
    universe = [fn for fn in index.functions
                if BILLING_DIR_RE.search(fn.rel)]
    in_universe = set(id(fn) for fn in universe)
    seeds = [fn for fn in universe
             if (fn.cls and ("Simulator" in fn.cls or
                             fn.cls == "BillingReport")) or
             fn.name == "merge_shard"]
    # Call edges, including operator+= edges implied by compound assignment
    # on class-typed lvalues.
    edges: dict[int, list[FunctionFacts]] = {}
    for fn in universe:
        targets: list[FunctionFacts] = []
        for site in fn.calls:
            targets.extend(t for t in _resolve_call_targets(index, fn, site)
                           if id(t) in in_universe)
        for _, ref in fn.compound_adds:
            t = index.resolve(ref, fn)
            cf = index.class_of(t)
            if cf is not None:
                targets.extend(c for c in index.by_name.get("operator+=", [])
                               if c.cls == cf.name and id(c) in in_universe)
        edges[id(fn)] = targets
    reachable: dict[int, FunctionFacts] = {}
    stack = list(seeds)
    while stack:
        fn = stack.pop()
        if id(fn) in reachable:
            continue
        reachable[id(fn)] = fn
        stack.extend(edges.get(id(fn), []))
    findings = []
    for fn in reachable.values():
        for line, ref in fn.compound_adds:
            t = index.resolve(ref, fn)
            if index.is_double(t):
                findings.append(Finding(
                    fn.rel, line, "billing-exact-sum",
                    f"double '+=' on '{ref.text}' in {fn.qname}(), which is "
                    "reachable from Simulator/BillingReport/merge_shard "
                    "code; accumulate through stats::ExactSum or document "
                    "why the fold order is fixed"))
    return findings


def rule_rng_flow(index: Index) -> tuple[list[Finding], dict]:
    """Returns construction findings plus the taint map used after
    suppression filtering to flag callers of constructing functions."""
    findings = []
    constructing: dict[int, tuple[FunctionFacts, str]] = {}
    for fn in index.functions:
        if RNG_EXEMPT_RE.search(fn.rel):
            continue
        for line, type_str in fn.constructions:
            if index.is_rng_engine(type_str):
                findings.append(Finding(
                    fn.rel, line, "rng-flow",
                    f"constructs {index.canonical(type_str)} in "
                    f"{fn.qname}(); all randomness must flow through an "
                    "explicitly seeded util::Rng"))
                constructing[id(fn)] = (fn, index.canonical(type_str))
        for site in fn.calls:
            if site.qual and index.is_rng_engine(site.qual):
                findings.append(Finding(
                    fn.rel, site.line, "rng-flow",
                    f"constructs a temporary {index.canonical(site.qual)} "
                    f"in {fn.qname}(); all randomness must flow through an "
                    "explicitly seeded util::Rng"))
                constructing[id(fn)] = (fn, index.canonical(site.qual))
    return findings, constructing


def rule_rng_flow_callers(index: Index, tainted: dict) -> list[Finding]:
    """Call-graph propagation: direct and transitive callers of functions
    that construct engines (post-suppression) are flagged at the call site."""
    findings = []
    tainted_ids = dict(tainted)
    changed = True
    flagged_sites = set()
    while changed:
        changed = False
        for fn in index.functions:
            if RNG_EXEMPT_RE.search(fn.rel):
                continue
            for site in fn.calls:
                for target in _resolve_call_targets(index, fn, site):
                    if id(target) not in tainted_ids:
                        continue
                    key = (fn.rel, site.line, target.qname)
                    if key in flagged_sites:
                        continue
                    flagged_sites.add(key)
                    _, engine = tainted_ids[id(target)]
                    findings.append(Finding(
                        fn.rel, site.line, "rng-flow",
                        f"{fn.qname}() calls {target.qname}(), which "
                        f"constructs {engine}; route the randomness through "
                        "util::Rng instead"))
                    if id(fn) not in tainted_ids:
                        tainted_ids[id(fn)] = (fn, engine)
                        changed = True
    return findings


def rule_unordered_iteration(index: Index,
                             scope_dirs: list[str] | None) -> list[Finding]:
    findings = []
    for fn in index.functions:
        if scope_dirs is not None:
            if not any(fn.rel.startswith(d + "/") or fn.rel == d
                       for d in scope_dirs):
                continue
        elif not re.search(r"(^|/)src/", fn.rel):
            continue
        for line, ref in fn.range_fors:
            t = index.resolve(ref, fn)
            if index.is_unordered(t):
                findings.append(Finding(
                    fn.rel, line, "unordered-iteration",
                    f"range-for over '{ref.text}' whose type resolves to "
                    f"{index.canonical(t)} in {fn.qname}(); hash-iteration "
                    "order is unspecified in a TU linked into minicost_core"))
    return findings


def rule_lock_pool_callback(index: Index) -> list[Finding]:
    findings = []
    for fn in index.functions:
        cf = index.classes.get(fn.cls) if fn.cls else None
        if cf is None or not cf.guarded:
            continue
        for site in fn.locked_calls:
            recv_type = index.resolve(site.receiver, fn) \
                if site.receiver is not None else None
            recv_canon = index.canonical(recv_type) if recv_type else ""
            if site.name in POOL_CALLEES:
                if recv_type is None or "ThreadPool" in recv_canon or \
                        "TraceReader" in recv_canon or \
                        "Prefetcher" in recv_canon:
                    findings.append(Finding(
                        fn.rel, site.line, "lock-pool-callback",
                        f"{fn.qname}() calls {site.name}() while holding a "
                        f"lock in MC_GUARDED_BY-annotated class {fn.cls}; "
                        "re-entering the help-while-waiting pool with a "
                        "mutex held can deadlock (DESIGN.md §8)"))
            elif site.name in FUTURE_BLOCKERS and "future" in recv_canon:
                findings.append(Finding(
                    fn.rel, site.line, "lock-pool-callback",
                    f"{fn.qname}() blocks on future::{site.name}() while "
                    f"holding a lock in MC_GUARDED_BY-annotated class "
                    f"{fn.cls}; the pool may steal work that needs the "
                    "same mutex (DESIGN.md §8)"))
    return findings


# --------------------------------------------------------------------------
# Optional clang.cindex frontend.
# --------------------------------------------------------------------------

def extract_clang(root: Path, rels: list[str],
                  compile_db: Path | None) -> dict[str, FileFacts] | None:
    """Parses each TU with libclang and lowers the cursors into the same
    FileFacts model the builtin frontend produces. Returns None when
    libclang is unavailable so the caller can fall back."""
    try:
        from clang import cindex  # type: ignore
        index = cindex.Index.create()
    except Exception as err:  # pragma: no cover - environment dependent
        print(f"lint_ast: clang frontend unavailable ({err}); "
              "falling back to builtin", file=sys.stderr)
        return None

    args_by_file: dict[str, list[str]] = {}
    if compile_db and compile_db.is_file():
        for entry in json.loads(compile_db.read_text()):
            path = str(Path(entry["directory"]) / entry["file"])
            raw = entry.get("arguments") or entry.get("command", "").split()
            args = [a for a in raw[1:] if not a.endswith(".cpp") and
                    a not in ("-c", "-o") and not a.endswith(".o")]
            args_by_file[str(Path(path).resolve())] = args

    ck = cindex.CursorKind
    files: dict[str, FileFacts] = {}

    def rel_of(cursor) -> str | None:
        loc = cursor.location
        if loc.file is None:
            return None
        try:
            return Path(loc.file.name).resolve().relative_to(root).as_posix()
        except ValueError:
            return None

    def facts_for(rel: str) -> FileFacts:
        return files.setdefault(rel, FileFacts(rel=rel))

    def canon_type(ctype) -> str:
        return ctype.get_canonical().spelling.replace(" ", "")

    def lower_function(cursor, rel: str) -> None:
        cls = None
        sem = cursor.semantic_parent
        if sem is not None and sem.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
            cls = sem.spelling
        fn = FunctionFacts(
            qname=f"{cls}::{cursor.spelling}" if cls else cursor.spelling,
            name=cursor.spelling, cls=cls, rel=rel,
            line=cursor.location.line)
        facts_for(rel).functions.append(fn)
        lock_extents: list[tuple[int, int]] = []

        def locked(line: int) -> bool:
            return any(a <= line <= b for a, b in lock_extents)

        def walk(node):
            for child in node.get_children():
                kind = child.kind
                line = child.location.line
                if kind == ck.VAR_DECL:
                    t = canon_type(child.type)
                    fn.constructions.append((line, t))
                    if LOCK_TYPE_RE.search(t):
                        ext = child.semantic_parent.extent \
                            if child.semantic_parent else node.extent
                        lock_extents.append((line, ext.end.line))
                elif kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                    kids = list(child.get_children())
                    if kids:
                        t = canon_type(kids[0].type)
                        fn.compound_adds.append(
                            (line, ExprRef(base="", base_type=t,
                                           text=_tokens_text(child))))
                elif kind == ck.CXX_FOR_RANGE_STMT:
                    kids = list(child.get_children())
                    if len(kids) >= 2:
                        t = canon_type(kids[1].type)
                        fn.range_fors.append(
                            (line, ExprRef(base="", base_type=t,
                                           text=_tokens_text(kids[1]))))
                elif kind == ck.CALL_EXPR:
                    ref = child.referenced
                    name = child.spelling or ""
                    qual = ""
                    recv_type = None
                    if ref is not None:
                        sp = ref.semantic_parent
                        if sp is not None and sp.kind in (ck.CLASS_DECL,
                                                          ck.STRUCT_DECL):
                            qual = f"{sp.spelling}::{ref.spelling}"
                            recv_type = sp.spelling
                    site = CallSite(line=line, name=name, qual=qual,
                                    receiver=ExprRef(
                                        base="", base_type=recv_type)
                                    if recv_type else None)
                    fn.calls.append(site)
                    if locked(line):
                        fn.locked_calls.append(site)
                walk(child)

        def _tokens_text(node) -> str:
            try:
                return " ".join(t.spelling for t in node.get_tokens())[:60]
            except Exception:
                return ""

        walk(cursor)

    def visit(cursor):
        for child in cursor.get_children():
            rel = rel_of(child)
            if rel is None:
                continue
            kind = child.kind
            if kind in (ck.NAMESPACE, ck.UNEXPOSED_DECL):
                visit(child)
            elif kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                    child.is_definition():
                cf = facts_for(rel).classes.setdefault(
                    child.spelling,
                    ClassFacts(name=child.spelling, rel=rel))
                for member in child.get_children():
                    if member.kind == ck.FIELD_DECL:
                        cf.members[member.spelling] = canon_type(member.type)
                        if any("guarded_by" in (a.spelling or "")
                               for a in member.get_children()):
                            cf.guarded = True
                    elif member.kind == ck.CXX_METHOD and \
                            member.is_definition():
                        cf.method_returns.setdefault(
                            member.spelling,
                            canon_type(member.result_type))
                        lower_function(member, rel)
                visit(child)
            elif kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                          ck.DESTRUCTOR) and child.is_definition():
                lower_function(child, rel)
            elif kind == ck.TYPE_ALIAS_DECL or kind == ck.TYPEDEF_DECL:
                try:
                    facts_for(rel).aliases[child.spelling] = \
                        canon_type(child.underlying_typedef_type)
                except Exception:
                    pass

    for rel in rels:
        if not rel.endswith(".cpp"):
            continue
        path = root / rel
        args = args_by_file.get(str(path.resolve()),
                                ["-std=c++20", f"-I{root / 'src'}"])
        try:
            tu = index.parse(str(path), args=args)
        except Exception as err:  # pragma: no cover
            print(f"lint_ast: clang parse failed for {rel} ({err}); "
                  "falling back to builtin", file=sys.stderr)
            return None
        visit(tu.cursor)
    return files


# --------------------------------------------------------------------------
# Suppressions (shared semantics with lint_contract.py, distinct tag).
# --------------------------------------------------------------------------

def collect_suppressions(raw_lines: list[str], rel: str):
    """Returns ({line: {rule}}, [(line, rule)], [Finding-errors]). A
    suppression covers its own line and the one below it."""
    allowed: dict[int, set[str]] = {}
    declared: list[tuple[int, str]] = []
    errors: list[Finding] = []
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            if "lint-ast" in line and "allow" in line:
                errors.append(Finding(rel, idx, "bad-suppression",
                                      "malformed lint-ast suppression"))
            continue
        if not m.group("reason"):
            errors.append(Finding(rel, idx, "bad-suppression",
                                  "suppression must give a reason: "
                                  "// lint-ast: allow(rule) -- why"))
            continue
        rule = m.group("rule")
        if rule not in RULE_IDS:
            errors.append(Finding(rel, idx, "bad-suppression",
                                  f"unknown rule id '{rule}' in lint-ast "
                                  "suppression"))
            continue
        declared.append((idx, rule))
        allowed.setdefault(idx, set()).add(rule)
        allowed.setdefault(idx + 1, set()).add(rule)
    return allowed, declared, errors


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

SOURCE_DIRS = ("src", "tools", "bench")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}


def discover_files(root: Path, compile_db: Path | None) -> list[str]:
    rels: set[str] = set()
    if compile_db is not None and compile_db.is_file():
        try:
            entries = json.loads(compile_db.read_text())
        except (OSError, json.JSONDecodeError):
            entries = []
        for entry in entries:
            path = Path(entry.get("directory", ".")) / entry.get("file", "")
            try:
                rel = path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                continue
            if rel.split("/")[0] in SOURCE_DIRS:
                rels.add(rel)
    if not rels:
        for top in SOURCE_DIRS:
            base = root / top
            if base.is_dir():
                rels.update(p.relative_to(root).as_posix()
                            for p in base.rglob("*.cpp"))
    # Headers are always indexed: aliases and member types live there.
    for top in SOURCE_DIRS:
        base = root / top
        if base.is_dir():
            for suffix in (".hpp", ".h"):
                rels.update(p.relative_to(root).as_posix()
                            for p in base.rglob(f"*{suffix}"))
    return sorted(rels)


def run(root: Path, paths: list[Path] | None = None,
        compile_db: Path | None = None,
        frontend: str = "builtin") -> list[Finding]:
    root = root.resolve()
    if paths:
        rels = []
        for p in paths:
            p = (root / p) if not p.is_absolute() else p
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                try:
                    rels.append(p.resolve().relative_to(root).as_posix())
                except ValueError:
                    continue
        rels = sorted(set(rels))
    else:
        rels = discover_files(root, compile_db)

    raw_by_rel: dict[str, list[str]] = {}
    for rel in rels:
        try:
            raw_by_rel[rel] = (root / rel).read_text(
                encoding="utf-8", errors="replace").splitlines()
        except OSError:
            raw_by_rel[rel] = []

    files: dict[str, FileFacts] | None = None
    if frontend in ("clang", "auto"):
        files = extract_clang(root, rels, compile_db)
        if files is None and frontend == "clang":
            frontend = "builtin"
    if files is None:
        files = {rel: extract_builtin(rel, "\n".join(raw_by_rel[rel]))
                 for rel in rels}
    index = Index(files)
    scope_dirs = core_link_closure(root)

    allowed_by_rel = {}
    declared_by_rel = {}
    findings: list[Finding] = []
    for rel in rels:
        allowed, declared, errors = collect_suppressions(raw_by_rel[rel], rel)
        allowed_by_rel[rel] = allowed
        declared_by_rel[rel] = declared
        findings.extend(errors)

    used: set[tuple[str, int, str]] = set()

    def apply_suppressions(raw: list[Finding]) -> list[Finding]:
        out = []
        for f in raw:
            allowed = allowed_by_rel.get(str(f.path), {})
            if f.rule in allowed.get(f.line, set()):
                for decl_line in (f.line, f.line - 1):
                    for idx, rule in declared_by_rel.get(str(f.path), []):
                        if idx == decl_line and rule == f.rule:
                            used.add((str(f.path), idx, rule))
                continue
            out.append(f)
        return out

    findings.extend(apply_suppressions(rule_billing_exact_sum(index)))
    rng_raw, constructing = rule_rng_flow(index)
    rng_kept = apply_suppressions(rng_raw)
    findings.extend(rng_kept)
    # Only unsuppressed constructions taint their callers: an allow() with a
    # written reason vouches for the whole flow below it.
    kept_keys = {(f.path, f.line) for f in rng_kept}
    surviving = {fid: v for fid, v in constructing.items()
                 if any((v[0].rel, line) in kept_keys
                        for line, t in v[0].constructions
                        if index.is_rng_engine(t)) or
                 any((v[0].rel, s.line) in kept_keys
                     for s in v[0].calls if s.qual and
                     index.is_rng_engine(s.qual))}
    findings.extend(apply_suppressions(
        rule_rng_flow_callers(index, surviving)))
    findings.extend(apply_suppressions(
        rule_unordered_iteration(index, scope_dirs)))
    findings.extend(apply_suppressions(rule_lock_pool_callback(index)))

    for rel in rels:
        for idx, rule in declared_by_rel[rel]:
            if (rel, idx, rule) not in used:
                findings.append(Finding(
                    rel, idx, "stale-suppression",
                    f"allow({rule}) no longer suppresses anything here; "
                    "delete the comment (or fix the rule id)"))
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json if present)")
    parser.add_argument("--frontend", choices=("builtin", "clang", "auto"),
                        default="builtin",
                        help="C++ frontend (default: builtin)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="specific files to lint (default: the "
                             "compile_commands TU set + headers)")
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not root.is_dir():
        print(f"lint_ast: no such root: {root}", file=sys.stderr)
        return 2
    compile_db = args.compile_commands
    if compile_db is None:
        candidate = root / "build" / "compile_commands.json"
        compile_db = candidate if candidate.is_file() else None
    findings = run(root, args.paths or None, compile_db, args.frontend)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_ast: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
