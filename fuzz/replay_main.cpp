// Standalone corpus-replay driver for toolchains without the libFuzzer
// runtime (GCC builds, plain test runs). Links against the same
// LLVMFuzzerTestOneInput as the instrumented binary and feeds it every file
// named on the command line; directory arguments are walked in sorted order
// so replay order — and therefore any crash — is deterministic. Exit 0
// means every input was consumed without crashing; this is how the
// committed regression corpus runs as ctest cases in every build.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::filesystem::path> collect(int argc, char** argv) {
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg = argv[i];
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> dir;
      for (const auto& entry : std::filesystem::directory_iterator(arg))
        if (entry.is_regular_file()) dir.push_back(entry.path());
      std::sort(dir.begin(), dir.end());
      inputs.insert(inputs.end(), dir.begin(), dir.end());
    } else {
      inputs.push_back(arg);
    }
  }
  return inputs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto inputs = collect(argc, argv);
  if (inputs.empty()) {
    std::cerr << "usage: " << argv[0] << " <corpus-file-or-dir>...\n";
    return 2;
  }
  for (const auto& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot read " << path << "\n";
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    std::cout << "ok " << path.filename().string() << " (" << bytes.size()
              << " bytes)\n";
  }
  std::cout << inputs.size() << " corpus inputs replayed\n";
  return 0;
}
