// Fuzz target: the CSV trace container (trace/trace_io.hpp). Arbitrary
// bytes must either parse into a trace that passes validate() or raise a
// std::exception — the loader's strict from_chars parsing and day-count cap
// exist precisely so no input reaches an overflowing width check or a giant
// reserve().
#include <cstddef>
#include <cstdint>
#include <exception>

#include "fuzz_input_file.hpp"
#include "trace/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = minicost::fuzz::stage_input(data, size, "csv");
  try {
    (void)minicost::trace::load_trace(path);
  } catch (const std::exception&) {
    // Malformed rows reject with a message; that is the contract.
  }
  return 0;
}
