// Fuzz target: the `--serve` command grammar plus the CLI's FIRST:COUNT and
// comma-list parsers. These are *total* functions — any byte sequence maps
// to a command or a one-line error. No try/catch here on purpose: an
// exception escaping parse_serve_command is itself the bug this target
// exists to catch (the resident serve loop must keep serving).
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/serve_command.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)minicost::core::parse_serve_command(text);
  std::size_t first = 0;
  std::size_t count = 0;
  (void)minicost::core::parse_shard_range(text, &first, &count);
  std::vector<std::size_t> sizes;
  (void)minicost::core::parse_size_list(text, &sizes);
  return 0;
}
