// Fuzz target: the `.mct` container decoder. Input bytes are staged as a
// file and opened with TraceReader; a file that validates is then walked
// end to end (names, series, groups, checksums, materialization). The
// contract under test: arbitrary bytes either open cleanly or raise a
// std::exception — never a wild read, an overflowing offset computation, or
// an unbounded allocation (ASan/UBSan police the first two; the day/group
// caps and the decode-work cap below bound the third).
#include <cstddef>
#include <cstdint>
#include <exception>

#include "fuzz_input_file.hpp"
#include "store/trace_reader.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const auto& path = minicost::fuzz::stage_input(data, size, "mct");
  try {
    const minicost::store::TraceReader reader(path);
    const std::size_t files = reader.file_count();
    // v2 chunks compress, so a kilobyte input can legitimately *declare* a
    // frequency section that decodes to gigabytes (one 1-byte all-zeros
    // delta chunk per 2^20 files). Decoding is O(declared), not O(input):
    // walk the frequency data only when the decoded section is small, so
    // the fuzzer probes the decoder instead of timing out in memset.
    const bool small_freq = reader.freq_raw_bytes() <= (1u << 20);
    for (std::size_t i = 0; i < files; ++i) {
      (void)reader.name(i);
      (void)reader.size_gb(i);
      if (small_freq) {
        (void)reader.reads(i);
        (void)reader.writes(i);
      }
    }
    for (std::size_t g = 0; g < reader.group_count(); ++g)
      (void)reader.group(g);
    for (const auto& chunk : reader.chunk_table()) (void)chunk.codec_id;
    if (small_freq) reader.verify_checksums();
    // Materialize only plausibly-small traces so the fuzzer spends its time
    // in the decoder, not in copying a legitimately huge container.
    if (small_freq && files <= 64 && reader.days() <= 64) {
      (void)reader.materialize();
      if (files >= 2) (void)reader.materialize_shard(1, files - 1);
    }
  } catch (const std::exception&) {
    // Structured rejection is the expected path for malformed inputs.
  }
  return 0;
}
