#pragma once
// Stages a fuzz input as an on-disk file for the path-based parsers
// (TraceReader, load_trace). One scratch file per process, truncated and
// rewritten per input, so replaying a large corpus does not churn inodes.

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace minicost::fuzz {

/// Writes `size` bytes to a process-private scratch path and returns it.
inline const std::filesystem::path& stage_input(const std::uint8_t* data,
                                                std::size_t size,
                                                const char* tag) {
  static const std::filesystem::path path = [] {
    const char* dir = std::getenv("TMPDIR");
    return std::filesystem::path(dir != nullptr ? dir : "/tmp");
  }();
  static std::filesystem::path file;
  if (file.empty())
    file = path / ("minicost_fuzz_" + std::string(tag) + "_" +
                   std::to_string(::getpid()) + ".bin");
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  out.close();
  return file;
}

}  // namespace minicost::fuzz
