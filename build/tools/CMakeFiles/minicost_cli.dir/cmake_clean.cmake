file(REMOVE_RECURSE
  "CMakeFiles/minicost_cli.dir/minicost_cli.cpp.o"
  "CMakeFiles/minicost_cli.dir/minicost_cli.cpp.o.d"
  "minicost"
  "minicost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
