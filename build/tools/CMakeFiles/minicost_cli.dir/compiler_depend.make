# Empty compiler generated dependencies file for minicost_cli.
# This may be replaced when dependencies are built.
