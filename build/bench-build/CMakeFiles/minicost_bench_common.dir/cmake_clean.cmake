file(REMOVE_RECURSE
  "CMakeFiles/minicost_bench_common.dir/common.cpp.o"
  "CMakeFiles/minicost_bench_common.dir/common.cpp.o.d"
  "libminicost_bench_common.a"
  "libminicost_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
