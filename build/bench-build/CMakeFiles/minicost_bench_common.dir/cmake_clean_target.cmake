file(REMOVE_RECURSE
  "libminicost_bench_common.a"
)
