# Empty dependencies file for minicost_bench_common.
# This may be replaced when dependencies are built.
