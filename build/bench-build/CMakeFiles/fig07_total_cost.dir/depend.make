# Empty dependencies file for fig07_total_cost.
# This may be replaced when dependencies are built.
