file(REMOVE_RECURSE
  "../bench/fig07_total_cost"
  "../bench/fig07_total_cost.pdb"
  "CMakeFiles/fig07_total_cost.dir/fig07_total_cost.cpp.o"
  "CMakeFiles/fig07_total_cost.dir/fig07_total_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_total_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
