file(REMOVE_RECURSE
  "../bench/micro_policies"
  "../bench/micro_policies.pdb"
  "CMakeFiles/micro_policies.dir/micro_policies.cpp.o"
  "CMakeFiles/micro_policies.dir/micro_policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
