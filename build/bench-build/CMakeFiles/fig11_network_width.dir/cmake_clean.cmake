file(REMOVE_RECURSE
  "../bench/fig11_network_width"
  "../bench/fig11_network_width.pdb"
  "CMakeFiles/fig11_network_width.dir/fig11_network_width.cpp.o"
  "CMakeFiles/fig11_network_width.dir/fig11_network_width.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_network_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
