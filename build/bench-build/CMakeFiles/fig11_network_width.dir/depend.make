# Empty dependencies file for fig11_network_width.
# This may be replaced when dependencies are built.
