file(REMOVE_RECURSE
  "../bench/fig13_aggregation"
  "../bench/fig13_aggregation.pdb"
  "CMakeFiles/fig13_aggregation.dir/fig13_aggregation.cpp.o"
  "CMakeFiles/fig13_aggregation.dir/fig13_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
