# Empty dependencies file for fig13_aggregation.
# This may be replaced when dependencies are built.
