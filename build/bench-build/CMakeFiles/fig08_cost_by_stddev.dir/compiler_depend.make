# Empty compiler generated dependencies file for fig08_cost_by_stddev.
# This may be replaced when dependencies are built.
