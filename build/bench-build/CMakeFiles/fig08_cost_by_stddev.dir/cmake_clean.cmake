file(REMOVE_RECURSE
  "../bench/fig08_cost_by_stddev"
  "../bench/fig08_cost_by_stddev.pdb"
  "CMakeFiles/fig08_cost_by_stddev.dir/fig08_cost_by_stddev.cpp.o"
  "CMakeFiles/fig08_cost_by_stddev.dir/fig08_cost_by_stddev.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cost_by_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
