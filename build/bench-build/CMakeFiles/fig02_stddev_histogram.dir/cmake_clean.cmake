file(REMOVE_RECURSE
  "../bench/fig02_stddev_histogram"
  "../bench/fig02_stddev_histogram.pdb"
  "CMakeFiles/fig02_stddev_histogram.dir/fig02_stddev_histogram.cpp.o"
  "CMakeFiles/fig02_stddev_histogram.dir/fig02_stddev_histogram.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_stddev_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
