# Empty dependencies file for fig02_stddev_histogram.
# This may be replaced when dependencies are built.
