# Empty dependencies file for ablation_horizon.
# This may be replaced when dependencies are built.
