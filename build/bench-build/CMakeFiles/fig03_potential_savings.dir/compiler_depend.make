# Empty compiler generated dependencies file for fig03_potential_savings.
# This may be replaced when dependencies are built.
