file(REMOVE_RECURSE
  "../bench/fig03_potential_savings"
  "../bench/fig03_potential_savings.pdb"
  "CMakeFiles/fig03_potential_savings.dir/fig03_potential_savings.cpp.o"
  "CMakeFiles/fig03_potential_savings.dir/fig03_potential_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_potential_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
