# Empty compiler generated dependencies file for fig09_learning_rate.
# This may be replaced when dependencies are built.
