file(REMOVE_RECURSE
  "../bench/fig09_learning_rate"
  "../bench/fig09_learning_rate.pdb"
  "CMakeFiles/fig09_learning_rate.dir/fig09_learning_rate.cpp.o"
  "CMakeFiles/fig09_learning_rate.dir/fig09_learning_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_learning_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
