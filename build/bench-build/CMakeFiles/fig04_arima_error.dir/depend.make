# Empty dependencies file for fig04_arima_error.
# This may be replaced when dependencies are built.
