file(REMOVE_RECURSE
  "../bench/fig04_arima_error"
  "../bench/fig04_arima_error.pdb"
  "CMakeFiles/fig04_arima_error.dir/fig04_arima_error.cpp.o"
  "CMakeFiles/fig04_arima_error.dir/fig04_arima_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_arima_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
