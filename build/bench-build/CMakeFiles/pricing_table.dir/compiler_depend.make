# Empty compiler generated dependencies file for pricing_table.
# This may be replaced when dependencies are built.
