file(REMOVE_RECURSE
  "../bench/pricing_table"
  "../bench/pricing_table.pdb"
  "CMakeFiles/pricing_table.dir/pricing_table.cpp.o"
  "CMakeFiles/pricing_table.dir/pricing_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
