file(REMOVE_RECURSE
  "../bench/micro_nn"
  "../bench/micro_nn.pdb"
  "CMakeFiles/micro_nn.dir/micro_nn.cpp.o"
  "CMakeFiles/micro_nn.dir/micro_nn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
