# Empty compiler generated dependencies file for fig10_greedy_rate.
# This may be replaced when dependencies are built.
