file(REMOVE_RECURSE
  "../bench/fig10_greedy_rate"
  "../bench/fig10_greedy_rate.pdb"
  "CMakeFiles/fig10_greedy_rate.dir/fig10_greedy_rate.cpp.o"
  "CMakeFiles/fig10_greedy_rate.dir/fig10_greedy_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_greedy_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
