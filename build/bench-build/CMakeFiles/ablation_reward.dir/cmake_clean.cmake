file(REMOVE_RECURSE
  "../bench/ablation_reward"
  "../bench/ablation_reward.pdb"
  "CMakeFiles/ablation_reward.dir/ablation_reward.cpp.o"
  "CMakeFiles/ablation_reward.dir/ablation_reward.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
