file(REMOVE_RECURSE
  "../bench/micro_forecast"
  "../bench/micro_forecast.pdb"
  "CMakeFiles/micro_forecast.dir/micro_forecast.cpp.o"
  "CMakeFiles/micro_forecast.dir/micro_forecast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
