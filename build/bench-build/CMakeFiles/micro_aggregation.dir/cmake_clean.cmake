file(REMOVE_RECURSE
  "../bench/micro_aggregation"
  "../bench/micro_aggregation.pdb"
  "CMakeFiles/micro_aggregation.dir/micro_aggregation.cpp.o"
  "CMakeFiles/micro_aggregation.dir/micro_aggregation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
