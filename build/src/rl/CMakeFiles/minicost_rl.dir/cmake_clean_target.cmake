file(REMOVE_RECURSE
  "libminicost_rl.a"
)
