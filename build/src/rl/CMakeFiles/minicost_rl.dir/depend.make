# Empty dependencies file for minicost_rl.
# This may be replaced when dependencies are built.
