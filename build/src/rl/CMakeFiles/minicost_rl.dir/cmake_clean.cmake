file(REMOVE_RECURSE
  "CMakeFiles/minicost_rl.dir/a3c.cpp.o"
  "CMakeFiles/minicost_rl.dir/a3c.cpp.o.d"
  "CMakeFiles/minicost_rl.dir/dqn.cpp.o"
  "CMakeFiles/minicost_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/minicost_rl.dir/env.cpp.o"
  "CMakeFiles/minicost_rl.dir/env.cpp.o.d"
  "CMakeFiles/minicost_rl.dir/feature.cpp.o"
  "CMakeFiles/minicost_rl.dir/feature.cpp.o.d"
  "CMakeFiles/minicost_rl.dir/mdp.cpp.o"
  "CMakeFiles/minicost_rl.dir/mdp.cpp.o.d"
  "CMakeFiles/minicost_rl.dir/qlearn.cpp.o"
  "CMakeFiles/minicost_rl.dir/qlearn.cpp.o.d"
  "libminicost_rl.a"
  "libminicost_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
