
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a3c.cpp" "src/rl/CMakeFiles/minicost_rl.dir/a3c.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/a3c.cpp.o.d"
  "/root/repo/src/rl/dqn.cpp" "src/rl/CMakeFiles/minicost_rl.dir/dqn.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/dqn.cpp.o.d"
  "/root/repo/src/rl/env.cpp" "src/rl/CMakeFiles/minicost_rl.dir/env.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/env.cpp.o.d"
  "/root/repo/src/rl/feature.cpp" "src/rl/CMakeFiles/minicost_rl.dir/feature.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/feature.cpp.o.d"
  "/root/repo/src/rl/mdp.cpp" "src/rl/CMakeFiles/minicost_rl.dir/mdp.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/mdp.cpp.o.d"
  "/root/repo/src/rl/qlearn.cpp" "src/rl/CMakeFiles/minicost_rl.dir/qlearn.cpp.o" "gcc" "src/rl/CMakeFiles/minicost_rl.dir/qlearn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minicost_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minicost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
