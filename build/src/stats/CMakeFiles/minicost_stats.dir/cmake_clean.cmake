file(REMOVE_RECURSE
  "CMakeFiles/minicost_stats.dir/descriptive.cpp.o"
  "CMakeFiles/minicost_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/minicost_stats.dir/distributions.cpp.o"
  "CMakeFiles/minicost_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/minicost_stats.dir/error_metrics.cpp.o"
  "CMakeFiles/minicost_stats.dir/error_metrics.cpp.o.d"
  "CMakeFiles/minicost_stats.dir/histogram.cpp.o"
  "CMakeFiles/minicost_stats.dir/histogram.cpp.o.d"
  "libminicost_stats.a"
  "libminicost_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
