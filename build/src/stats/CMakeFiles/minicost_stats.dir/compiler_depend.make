# Empty compiler generated dependencies file for minicost_stats.
# This may be replaced when dependencies are built.
