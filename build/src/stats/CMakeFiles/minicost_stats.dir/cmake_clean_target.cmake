file(REMOVE_RECURSE
  "libminicost_stats.a"
)
