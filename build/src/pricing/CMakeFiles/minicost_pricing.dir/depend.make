# Empty dependencies file for minicost_pricing.
# This may be replaced when dependencies are built.
