
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pricing/catalog.cpp" "src/pricing/CMakeFiles/minicost_pricing.dir/catalog.cpp.o" "gcc" "src/pricing/CMakeFiles/minicost_pricing.dir/catalog.cpp.o.d"
  "/root/repo/src/pricing/policy.cpp" "src/pricing/CMakeFiles/minicost_pricing.dir/policy.cpp.o" "gcc" "src/pricing/CMakeFiles/minicost_pricing.dir/policy.cpp.o.d"
  "/root/repo/src/pricing/tier.cpp" "src/pricing/CMakeFiles/minicost_pricing.dir/tier.cpp.o" "gcc" "src/pricing/CMakeFiles/minicost_pricing.dir/tier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
