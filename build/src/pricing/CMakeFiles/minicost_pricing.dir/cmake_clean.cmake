file(REMOVE_RECURSE
  "CMakeFiles/minicost_pricing.dir/catalog.cpp.o"
  "CMakeFiles/minicost_pricing.dir/catalog.cpp.o.d"
  "CMakeFiles/minicost_pricing.dir/policy.cpp.o"
  "CMakeFiles/minicost_pricing.dir/policy.cpp.o.d"
  "CMakeFiles/minicost_pricing.dir/tier.cpp.o"
  "CMakeFiles/minicost_pricing.dir/tier.cpp.o.d"
  "libminicost_pricing.a"
  "libminicost_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
