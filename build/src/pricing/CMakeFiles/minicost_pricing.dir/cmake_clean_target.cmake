file(REMOVE_RECURSE
  "libminicost_pricing.a"
)
