file(REMOVE_RECURSE
  "libminicost_sim.a"
)
