
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/billing.cpp" "src/sim/CMakeFiles/minicost_sim.dir/billing.cpp.o" "gcc" "src/sim/CMakeFiles/minicost_sim.dir/billing.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/minicost_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/minicost_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/sim/CMakeFiles/minicost_sim.dir/latency.cpp.o" "gcc" "src/sim/CMakeFiles/minicost_sim.dir/latency.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/minicost_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/minicost_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
