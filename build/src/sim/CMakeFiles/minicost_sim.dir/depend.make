# Empty dependencies file for minicost_sim.
# This may be replaced when dependencies are built.
