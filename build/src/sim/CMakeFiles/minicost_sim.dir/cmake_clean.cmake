file(REMOVE_RECURSE
  "CMakeFiles/minicost_sim.dir/billing.cpp.o"
  "CMakeFiles/minicost_sim.dir/billing.cpp.o.d"
  "CMakeFiles/minicost_sim.dir/cost_model.cpp.o"
  "CMakeFiles/minicost_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/minicost_sim.dir/latency.cpp.o"
  "CMakeFiles/minicost_sim.dir/latency.cpp.o.d"
  "CMakeFiles/minicost_sim.dir/simulator.cpp.o"
  "CMakeFiles/minicost_sim.dir/simulator.cpp.o.d"
  "libminicost_sim.a"
  "libminicost_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
