file(REMOVE_RECURSE
  "CMakeFiles/minicost_trace.dir/analysis.cpp.o"
  "CMakeFiles/minicost_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/minicost_trace.dir/pagecounts_parser.cpp.o"
  "CMakeFiles/minicost_trace.dir/pagecounts_parser.cpp.o.d"
  "CMakeFiles/minicost_trace.dir/synthetic.cpp.o"
  "CMakeFiles/minicost_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/minicost_trace.dir/trace.cpp.o"
  "CMakeFiles/minicost_trace.dir/trace.cpp.o.d"
  "CMakeFiles/minicost_trace.dir/trace_io.cpp.o"
  "CMakeFiles/minicost_trace.dir/trace_io.cpp.o.d"
  "libminicost_trace.a"
  "libminicost_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
