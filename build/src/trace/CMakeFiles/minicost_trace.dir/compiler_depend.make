# Empty compiler generated dependencies file for minicost_trace.
# This may be replaced when dependencies are built.
