file(REMOVE_RECURSE
  "libminicost_trace.a"
)
