
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/acf.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/acf.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/acf.cpp.o.d"
  "/root/repo/src/forecast/arima.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/arima.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/arima.cpp.o.d"
  "/root/repo/src/forecast/evaluate.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/evaluate.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/evaluate.cpp.o.d"
  "/root/repo/src/forecast/ewma.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/ewma.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/ewma.cpp.o.d"
  "/root/repo/src/forecast/linalg.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/linalg.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/linalg.cpp.o.d"
  "/root/repo/src/forecast/seasonal_naive.cpp" "src/forecast/CMakeFiles/minicost_forecast.dir/seasonal_naive.cpp.o" "gcc" "src/forecast/CMakeFiles/minicost_forecast.dir/seasonal_naive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
