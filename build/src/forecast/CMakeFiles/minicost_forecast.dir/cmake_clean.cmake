file(REMOVE_RECURSE
  "CMakeFiles/minicost_forecast.dir/acf.cpp.o"
  "CMakeFiles/minicost_forecast.dir/acf.cpp.o.d"
  "CMakeFiles/minicost_forecast.dir/arima.cpp.o"
  "CMakeFiles/minicost_forecast.dir/arima.cpp.o.d"
  "CMakeFiles/minicost_forecast.dir/evaluate.cpp.o"
  "CMakeFiles/minicost_forecast.dir/evaluate.cpp.o.d"
  "CMakeFiles/minicost_forecast.dir/ewma.cpp.o"
  "CMakeFiles/minicost_forecast.dir/ewma.cpp.o.d"
  "CMakeFiles/minicost_forecast.dir/linalg.cpp.o"
  "CMakeFiles/minicost_forecast.dir/linalg.cpp.o.d"
  "CMakeFiles/minicost_forecast.dir/seasonal_naive.cpp.o"
  "CMakeFiles/minicost_forecast.dir/seasonal_naive.cpp.o.d"
  "libminicost_forecast.a"
  "libminicost_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
