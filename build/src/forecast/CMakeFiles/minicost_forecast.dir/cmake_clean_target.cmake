file(REMOVE_RECURSE
  "libminicost_forecast.a"
)
