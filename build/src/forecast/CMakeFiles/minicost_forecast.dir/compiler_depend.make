# Empty compiler generated dependencies file for minicost_forecast.
# This may be replaced when dependencies are built.
