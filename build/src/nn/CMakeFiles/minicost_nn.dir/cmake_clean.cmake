file(REMOVE_RECURSE
  "CMakeFiles/minicost_nn.dir/activation.cpp.o"
  "CMakeFiles/minicost_nn.dir/activation.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/conv1d.cpp.o"
  "CMakeFiles/minicost_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/dense.cpp.o"
  "CMakeFiles/minicost_nn.dir/dense.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/gradient_check.cpp.o"
  "CMakeFiles/minicost_nn.dir/gradient_check.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/network.cpp.o"
  "CMakeFiles/minicost_nn.dir/network.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/ops.cpp.o"
  "CMakeFiles/minicost_nn.dir/ops.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/optimizer.cpp.o"
  "CMakeFiles/minicost_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/minicost_nn.dir/serialize.cpp.o"
  "CMakeFiles/minicost_nn.dir/serialize.cpp.o.d"
  "libminicost_nn.a"
  "libminicost_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
