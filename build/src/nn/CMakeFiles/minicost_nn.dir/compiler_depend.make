# Empty compiler generated dependencies file for minicost_nn.
# This may be replaced when dependencies are built.
