file(REMOVE_RECURSE
  "libminicost_nn.a"
)
