
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/minicost_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/minicost_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/minicost_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gradient_check.cpp" "src/nn/CMakeFiles/minicost_nn.dir/gradient_check.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/gradient_check.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/minicost_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/nn/CMakeFiles/minicost_nn.dir/ops.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/ops.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/minicost_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/minicost_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/minicost_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
