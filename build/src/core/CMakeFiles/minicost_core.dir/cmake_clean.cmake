file(REMOVE_RECURSE
  "CMakeFiles/minicost_core.dir/aggregation.cpp.o"
  "CMakeFiles/minicost_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/minicost_core.dir/forecast_policy.cpp.o"
  "CMakeFiles/minicost_core.dir/forecast_policy.cpp.o.d"
  "CMakeFiles/minicost_core.dir/greedy.cpp.o"
  "CMakeFiles/minicost_core.dir/greedy.cpp.o.d"
  "CMakeFiles/minicost_core.dir/metrics.cpp.o"
  "CMakeFiles/minicost_core.dir/metrics.cpp.o.d"
  "CMakeFiles/minicost_core.dir/minicost_system.cpp.o"
  "CMakeFiles/minicost_core.dir/minicost_system.cpp.o.d"
  "CMakeFiles/minicost_core.dir/multicloud.cpp.o"
  "CMakeFiles/minicost_core.dir/multicloud.cpp.o.d"
  "CMakeFiles/minicost_core.dir/optimal.cpp.o"
  "CMakeFiles/minicost_core.dir/optimal.cpp.o.d"
  "CMakeFiles/minicost_core.dir/planner.cpp.o"
  "CMakeFiles/minicost_core.dir/planner.cpp.o.d"
  "CMakeFiles/minicost_core.dir/policy.cpp.o"
  "CMakeFiles/minicost_core.dir/policy.cpp.o.d"
  "CMakeFiles/minicost_core.dir/rl_policy.cpp.o"
  "CMakeFiles/minicost_core.dir/rl_policy.cpp.o.d"
  "CMakeFiles/minicost_core.dir/slo_policy.cpp.o"
  "CMakeFiles/minicost_core.dir/slo_policy.cpp.o.d"
  "libminicost_core.a"
  "libminicost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
