file(REMOVE_RECURSE
  "libminicost_core.a"
)
