
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/core/CMakeFiles/minicost_core.dir/aggregation.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/aggregation.cpp.o.d"
  "/root/repo/src/core/forecast_policy.cpp" "src/core/CMakeFiles/minicost_core.dir/forecast_policy.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/forecast_policy.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/minicost_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/minicost_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/minicost_system.cpp" "src/core/CMakeFiles/minicost_core.dir/minicost_system.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/minicost_system.cpp.o.d"
  "/root/repo/src/core/multicloud.cpp" "src/core/CMakeFiles/minicost_core.dir/multicloud.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/multicloud.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/core/CMakeFiles/minicost_core.dir/optimal.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/optimal.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/minicost_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/core/CMakeFiles/minicost_core.dir/policy.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/policy.cpp.o.d"
  "/root/repo/src/core/rl_policy.cpp" "src/core/CMakeFiles/minicost_core.dir/rl_policy.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/rl_policy.cpp.o.d"
  "/root/repo/src/core/slo_policy.cpp" "src/core/CMakeFiles/minicost_core.dir/slo_policy.cpp.o" "gcc" "src/core/CMakeFiles/minicost_core.dir/slo_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minicost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/minicost_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minicost_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/minicost_rl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
