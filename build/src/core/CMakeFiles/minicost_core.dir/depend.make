# Empty dependencies file for minicost_core.
# This may be replaced when dependencies are built.
