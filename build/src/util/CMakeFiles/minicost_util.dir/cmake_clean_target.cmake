file(REMOVE_RECURSE
  "libminicost_util.a"
)
