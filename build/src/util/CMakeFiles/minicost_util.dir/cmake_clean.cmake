file(REMOVE_RECURSE
  "CMakeFiles/minicost_util.dir/cli.cpp.o"
  "CMakeFiles/minicost_util.dir/cli.cpp.o.d"
  "CMakeFiles/minicost_util.dir/csv.cpp.o"
  "CMakeFiles/minicost_util.dir/csv.cpp.o.d"
  "CMakeFiles/minicost_util.dir/env.cpp.o"
  "CMakeFiles/minicost_util.dir/env.cpp.o.d"
  "CMakeFiles/minicost_util.dir/log.cpp.o"
  "CMakeFiles/minicost_util.dir/log.cpp.o.d"
  "CMakeFiles/minicost_util.dir/rng.cpp.o"
  "CMakeFiles/minicost_util.dir/rng.cpp.o.d"
  "CMakeFiles/minicost_util.dir/table.cpp.o"
  "CMakeFiles/minicost_util.dir/table.cpp.o.d"
  "CMakeFiles/minicost_util.dir/thread_pool.cpp.o"
  "CMakeFiles/minicost_util.dir/thread_pool.cpp.o.d"
  "libminicost_util.a"
  "libminicost_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicost_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
