# Empty compiler generated dependencies file for minicost_util.
# This may be replaced when dependencies are built.
