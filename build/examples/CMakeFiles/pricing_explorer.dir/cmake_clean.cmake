file(REMOVE_RECURSE
  "CMakeFiles/pricing_explorer.dir/pricing_explorer.cpp.o"
  "CMakeFiles/pricing_explorer.dir/pricing_explorer.cpp.o.d"
  "pricing_explorer"
  "pricing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
