# Empty dependencies file for pricing_explorer.
# This may be replaced when dependencies are built.
