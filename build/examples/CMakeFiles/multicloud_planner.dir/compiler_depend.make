# Empty compiler generated dependencies file for multicloud_planner.
# This may be replaced when dependencies are built.
