file(REMOVE_RECURSE
  "CMakeFiles/multicloud_planner.dir/multicloud_planner.cpp.o"
  "CMakeFiles/multicloud_planner.dir/multicloud_planner.cpp.o.d"
  "multicloud_planner"
  "multicloud_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicloud_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
