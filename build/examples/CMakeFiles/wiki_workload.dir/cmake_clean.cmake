file(REMOVE_RECURSE
  "CMakeFiles/wiki_workload.dir/wiki_workload.cpp.o"
  "CMakeFiles/wiki_workload.dir/wiki_workload.cpp.o.d"
  "wiki_workload"
  "wiki_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
