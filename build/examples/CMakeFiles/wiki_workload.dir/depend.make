# Empty dependencies file for wiki_workload.
# This may be replaced when dependencies are built.
