
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/env_test.cpp" "tests/CMakeFiles/util_tests.dir/util/env_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/env_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minicost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/minicost_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/minicost_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minicost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minicost_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
