file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/gradient_check_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/gradient_check_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/layers_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/network_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/network_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/ops_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/ops_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
