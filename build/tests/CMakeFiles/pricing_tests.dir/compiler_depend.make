# Empty compiler generated dependencies file for pricing_tests.
# This may be replaced when dependencies are built.
