file(REMOVE_RECURSE
  "CMakeFiles/pricing_tests.dir/pricing/catalog_test.cpp.o"
  "CMakeFiles/pricing_tests.dir/pricing/catalog_test.cpp.o.d"
  "CMakeFiles/pricing_tests.dir/pricing/policy_test.cpp.o"
  "CMakeFiles/pricing_tests.dir/pricing/policy_test.cpp.o.d"
  "CMakeFiles/pricing_tests.dir/pricing/tier_test.cpp.o"
  "CMakeFiles/pricing_tests.dir/pricing/tier_test.cpp.o.d"
  "pricing_tests"
  "pricing_tests.pdb"
  "pricing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
