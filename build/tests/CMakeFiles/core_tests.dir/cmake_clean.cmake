file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/aggregation_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/aggregation_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/forecast_policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/forecast_policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/greedy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multicloud_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multicloud_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/optimal_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/optimal_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/planner_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/planner_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/rl_policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/rl_policy_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/slo_policy_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/slo_policy_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
