
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregation_test.cpp" "tests/CMakeFiles/core_tests.dir/core/aggregation_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/aggregation_test.cpp.o.d"
  "/root/repo/tests/core/forecast_policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/forecast_policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/forecast_policy_test.cpp.o.d"
  "/root/repo/tests/core/greedy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/multicloud_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multicloud_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multicloud_test.cpp.o.d"
  "/root/repo/tests/core/optimal_test.cpp" "tests/CMakeFiles/core_tests.dir/core/optimal_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimal_test.cpp.o.d"
  "/root/repo/tests/core/planner_test.cpp" "tests/CMakeFiles/core_tests.dir/core/planner_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/planner_test.cpp.o.d"
  "/root/repo/tests/core/policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/policy_test.cpp.o.d"
  "/root/repo/tests/core/rl_policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/rl_policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rl_policy_test.cpp.o.d"
  "/root/repo/tests/core/slo_policy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/slo_policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/slo_policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minicost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/minicost_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/minicost_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minicost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minicost_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
