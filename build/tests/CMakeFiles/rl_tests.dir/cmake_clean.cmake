file(REMOVE_RECURSE
  "CMakeFiles/rl_tests.dir/rl/a3c_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/a3c_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/dqn_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/dqn_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/env_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/env_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/feature_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/feature_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/mdp_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/mdp_test.cpp.o.d"
  "CMakeFiles/rl_tests.dir/rl/qlearn_test.cpp.o"
  "CMakeFiles/rl_tests.dir/rl/qlearn_test.cpp.o.d"
  "rl_tests"
  "rl_tests.pdb"
  "rl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
