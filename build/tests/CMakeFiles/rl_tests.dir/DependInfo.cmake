
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rl/a3c_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/a3c_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/a3c_test.cpp.o.d"
  "/root/repo/tests/rl/dqn_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/dqn_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/dqn_test.cpp.o.d"
  "/root/repo/tests/rl/env_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/env_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/env_test.cpp.o.d"
  "/root/repo/tests/rl/feature_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/feature_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/feature_test.cpp.o.d"
  "/root/repo/tests/rl/mdp_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/mdp_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/mdp_test.cpp.o.d"
  "/root/repo/tests/rl/qlearn_test.cpp" "tests/CMakeFiles/rl_tests.dir/rl/qlearn_test.cpp.o" "gcc" "tests/CMakeFiles/rl_tests.dir/rl/qlearn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/minicost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/minicost_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/minicost_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minicost_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/minicost_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minicost_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/pricing/CMakeFiles/minicost_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/minicost_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/minicost_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
