# Empty compiler generated dependencies file for rl_tests.
# This may be replaced when dependencies are built.
